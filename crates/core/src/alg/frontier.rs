//! Flat, CSR-native ("frontier") engines for million-node scale.
//!
//! This module defines the [`FrontierEngine`] trait — the contract every
//! flat engine satisfies: all steady state lives in CSR-indexed arrays
//! and bit-packed per-slot words, the enabled set is the incremental
//! [`EnabledTracker`] worklist, and no map-backed
//! [`lr_graph::ReversalInstance`] is ever materialized. One such engine
//! exists per algorithm family; [`FrontierFamily`] is the dispatch
//! enum that constructs them (and their map-backed differential
//! references) uniformly:
//!
//! | family | engine | flat per-node/per-slot state |
//! |---|---|---|
//! | FR | [`super::FrontierFrEngine`] | directions only |
//! | PR | [`FrontierPrEngine`] | `list[u]` as one bit per slot |
//! | NewPR | [`super::FrontierNewPrEngine`] | reversal counts as `Vec<u64>` |
//! | GB-pair | [`super::FrontierPairHeightsEngine`] | dense `Vec<PairHeight>` |
//! | GB-triple | [`super::FrontierTripleHeightsEngine`] | dense `Vec<TripleHeight>` |
//! | BLL | [`super::FrontierBllEngine`] | link labels as one bit per slot |
//!
//! [`FrontierPrEngine`], the PR 7 original, implements the exact
//! transition function of Algorithm 3 (`OneStepPR`, see [`super::pr`]) —
//! same target selection, same list bookkeeping, same `"PR"` name in
//! reports — over a [`CsrInstance`]:
//!
//! * edge directions are the bit-packed [`MirroredDirs`] (1 bit per
//!   half-edge slot, twin bit updated in the same pass);
//! * the per-node `list[u]` sets are **also** one bit per half-edge
//!   slot: the bit of slot `(u, v)` is set iff `v ∈ list[u]` — the paper
//!   only ever asks "is neighbor `v` in `list[u]`?" and "is the list
//!   full?", both of which are masked word reads over `u`'s slot range;
//! * the enabled set is the incremental [`EnabledTracker`], whose batch
//!   merge is the greedy-round boundary for
//!   [`crate::engine::run_engine_frontier`].
//!
//! Nothing in any engine's steady state is proportional to anything but
//! the CSR arrays (≈ 8 bytes/half-edge) and a few bitsets and per-node
//! words (≈ 0.4 bytes/half-edge + ~8–24 bytes/node), so a
//! 1,000,000-node instance runs in tens of megabytes where the
//! map-backed frontend would need gigabytes. The differential suite
//! (`tests/frontier_differential.rs`) pins every family step-for-step
//! to its map engine on every tested size and schedule.

use std::sync::Arc;

use lr_graph::{CsrGraph, CsrInstance, NodeId, Orientation};

use crate::alg::{
    AlgorithmKind, BllEngine, BllLabeling, FrontierBllEngine, FrontierFrEngine,
    FrontierNewPrEngine, FrontierPairHeightsEngine, FrontierTripleHeightsEngine, ReversalEngine,
};
use crate::{EnabledTracker, MirroredDirs, PlanAux, StepOutcome, StepScratch};

/// A [`ReversalEngine`] whose entire steady state is flat: CSR-indexed
/// arrays and bit-packed per-slot words, with the incremental
/// [`EnabledTracker`] as its worklist. Implementors never materialize a
/// map-backed instance ([`ReversalEngine::instance`] stays `None`), so
/// they are the only engines that run at million-node scale; construct
/// them through [`FrontierFamily::engine`] (or
/// [`AlgorithmKind::frontier_engine`]) to get the fast path by default.
pub trait FrontierEngine: ReversalEngine {
    /// The retained initial configuration (shared CSR + one direction
    /// bit per half-edge) the engine was built from and resets to.
    fn csr_instance(&self) -> &CsrInstance;

    /// Total resident bytes of the engine's steady state — the shared
    /// CSR arrays plus every per-node/per-slot array the engine owns.
    /// This is the number the `BENCH_pr7`/`BENCH_pr8` memory rows
    /// report.
    fn resident_bytes(&self) -> usize;
}

/// The six algorithm families of the frontier fast path, i.e.
/// [`AlgorithmKind`] extended with the BLL automaton (which the kind
/// enum excludes because one BLL engine exists per labeling rule).
///
/// [`FrontierFamily::engine`] builds the flat engine,
/// [`FrontierFamily::map_engine`] the map-backed differential
/// reference; the two are step-for-step identical by the frontier
/// differential suite.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum FrontierFamily {
    /// Full Reversal → [`super::FrontierFrEngine`].
    FullReversal,
    /// Partial Reversal (Algorithm 1/3) → [`FrontierPrEngine`].
    PartialReversal,
    /// NewPR (Algorithm 2) → [`super::FrontierNewPrEngine`].
    NewPr,
    /// Gafni–Bertsekas pair heights → [`super::FrontierPairHeightsEngine`].
    PairHeights,
    /// Gafni–Bertsekas triple heights → [`super::FrontierTripleHeightsEngine`].
    TripleHeights,
    /// Binary link labels with the given labeling rule →
    /// [`super::FrontierBllEngine`].
    Bll(BllLabeling),
}

impl FrontierFamily {
    /// Every family, with `BLL[PR]` as the canonical BLL entry (the
    /// `BLL[FR]` labeling shares the engine type and is covered by the
    /// differential suite separately).
    pub const ALL: [FrontierFamily; 6] = [
        FrontierFamily::FullReversal,
        FrontierFamily::PartialReversal,
        FrontierFamily::NewPr,
        FrontierFamily::PairHeights,
        FrontierFamily::TripleHeights,
        FrontierFamily::Bll(BllLabeling::PartialReversal),
    ];

    /// The display name, identical to what the engines report via
    /// [`ReversalEngine::algorithm_name`] (and so to what lands in
    /// [`crate::engine::RunStats::algorithm`]).
    pub fn name(self) -> &'static str {
        match self {
            FrontierFamily::FullReversal => "FR",
            FrontierFamily::PartialReversal => "PR",
            FrontierFamily::NewPr => "NewPR",
            FrontierFamily::PairHeights => "GB-pair",
            FrontierFamily::TripleHeights => "GB-triple",
            FrontierFamily::Bll(BllLabeling::PartialReversal) => "BLL[PR]",
            FrontierFamily::Bll(BllLabeling::FullReversal) => "BLL[FR]",
        }
    }

    /// Constructs this family's flat engine in the initial state of
    /// `inst`. This is the default execution substrate: every caller
    /// that has (or can stream) a [`CsrInstance`] should come through
    /// here.
    pub fn engine(self, inst: CsrInstance) -> Box<dyn FrontierEngine> {
        let engine: Box<dyn FrontierEngine> = match self {
            FrontierFamily::FullReversal => Box::new(FrontierFrEngine::new(inst)),
            FrontierFamily::PartialReversal => Box::new(FrontierPrEngine::new(inst)),
            FrontierFamily::NewPr => Box::new(FrontierNewPrEngine::new(inst)),
            FrontierFamily::PairHeights => Box::new(FrontierPairHeightsEngine::new(inst)),
            FrontierFamily::TripleHeights => Box::new(FrontierTripleHeightsEngine::new(inst)),
            FrontierFamily::Bll(labeling) => Box::new(FrontierBllEngine::new(inst, labeling)),
        };
        observe_engine_build(self.name(), engine.as_ref());
        engine
    }

    /// Constructs the map-backed reference engine for this family —
    /// the slow, `BTreeMap`-heavy frontend the differential suite pins
    /// the flat engine against.
    pub fn map_engine<'a>(
        self,
        inst: &'a lr_graph::ReversalInstance,
    ) -> Box<dyn ReversalEngine + 'a> {
        match self {
            FrontierFamily::FullReversal => AlgorithmKind::FullReversal.engine(inst),
            FrontierFamily::PartialReversal => AlgorithmKind::PartialReversal.engine(inst),
            FrontierFamily::NewPr => AlgorithmKind::NewPr.engine(inst),
            FrontierFamily::PairHeights => AlgorithmKind::PairHeights.engine(inst),
            FrontierFamily::TripleHeights => AlgorithmKind::TripleHeights.engine(inst),
            FrontierFamily::Bll(labeling) => Box::new(BllEngine::new(inst, labeling)),
        }
    }
}

/// Records build-time gauges (steady-state resident footprint, graph
/// extent) and an instant trace marker for a freshly built flat
/// engine. Costs one relaxed load when no obs session is recording;
/// the engine's step path is untouched either way.
fn observe_engine_build(family: &'static str, engine: &dyn FrontierEngine) {
    if !lr_obs::enabled() {
        return;
    }
    let csr = engine.csr_instance().csr();
    let resident = engine.resident_bytes() as u64;
    lr_obs::gauge("engine.resident_bytes").record_max(resident);
    lr_obs::gauge("engine.nodes").record_max(csr.node_count() as u64);
    lr_obs::gauge("engine.half_edges").record_max(csr.half_edge_count() as u64);
    lr_obs::instant(
        "engine",
        format!("engine.build {family}"),
        &[
            ("resident_bytes", resident),
            ("nodes", csr.node_count() as u64),
            ("half_edges", csr.half_edge_count() as u64),
        ],
    );
}

impl From<AlgorithmKind> for FrontierFamily {
    fn from(kind: AlgorithmKind) -> Self {
        match kind {
            AlgorithmKind::FullReversal => FrontierFamily::FullReversal,
            AlgorithmKind::PartialReversal => FrontierFamily::PartialReversal,
            AlgorithmKind::NewPr => FrontierFamily::NewPr,
            AlgorithmKind::PairHeights => FrontierFamily::PairHeights,
            AlgorithmKind::TripleHeights => FrontierFamily::TripleHeights,
        }
    }
}

/// Pops (counts) the set bits of `words` within slot range `start..end`.
pub(crate) fn count_bits_in_range(words: &[u64], start: usize, end: usize) -> usize {
    if start >= end {
        return 0;
    }
    let (w0, w1) = (start >> 6, (end - 1) >> 6);
    let lo = !0u64 << (start & 63);
    let hi = !0u64 >> (63 - ((end - 1) & 63));
    if w0 == w1 {
        (words[w0] & lo & hi).count_ones() as usize
    } else {
        (words[w0] & lo).count_ones() as usize
            + (words[w1] & hi).count_ones() as usize
            + words[w0 + 1..w1]
                .iter()
                .map(|&w| w.count_ones() as usize)
                .sum::<usize>()
    }
}

/// Clears every bit of `words` within slot range `start..end`.
pub(crate) fn clear_bits_in_range(words: &mut [u64], start: usize, end: usize) {
    if start >= end {
        return;
    }
    let (w0, w1) = (start >> 6, (end - 1) >> 6);
    let lo = !0u64 << (start & 63);
    let hi = !0u64 >> (63 - ((end - 1) & 63));
    if w0 == w1 {
        words[w0] &= !(lo & hi);
    } else {
        words[w0] &= !lo;
        words[w1] &= !hi;
        for w in &mut words[w0 + 1..w1] {
            *w = 0;
        }
    }
}

/// Sets every bit of `words` within slot range `start..end`.
pub(crate) fn set_bits_in_range(words: &mut [u64], start: usize, end: usize) {
    if start >= end {
        return;
    }
    let (w0, w1) = (start >> 6, (end - 1) >> 6);
    let lo = !0u64 << (start & 63);
    let hi = !0u64 >> (63 - ((end - 1) & 63));
    if w0 == w1 {
        words[w0] |= lo & hi;
    } else {
        words[w0] |= lo;
        words[w1] |= hi;
        for w in &mut words[w0 + 1..w1] {
            *w = !0;
        }
    }
}

/// `OneStepPR` (Algorithm 3) over a flat [`CsrInstance`]: bit-packed
/// directions, bit-packed lists, incremental enabled set.
#[derive(Debug, Clone)]
pub struct FrontierPrEngine {
    /// The initial configuration, retained for [`ReversalEngine::reset`]
    /// (an `Arc`'d CSR plus one bit per half-edge — cheap to keep).
    init: CsrInstance,
    dirs: MirroredDirs,
    /// `list[u] ∋ v` ⟺ the bit of slot `(u, v)` is set. Initially all
    /// clear (Algorithm 1/3 start with empty lists).
    list: Vec<u64>,
    tracker: EnabledTracker,
}

impl FrontierPrEngine {
    /// Creates the engine in the initial state of `inst`.
    pub fn new(inst: CsrInstance) -> Self {
        let dirs = MirroredDirs::from_csr_instance(&inst);
        let list = vec![0u64; inst.half_edge_count().div_ceil(64)];
        let tracker = EnabledTracker::from_dirs(&dirs, inst.dest());
        FrontierPrEngine {
            init: inst,
            dirs,
            list,
            tracker,
        }
    }

    /// The current bit-packed direction state.
    pub fn dirs(&self) -> &MirroredDirs {
        &self.dirs
    }

    /// Total resident bytes of the engine's steady state: the shared CSR
    /// arrays, the direction and list bitsets, the retained initial
    /// bitset, and the tracker's per-node out-counts. This is the number
    /// the `BENCH_pr7` memory rows report.
    pub fn resident_bytes(&self) -> usize {
        let csr = self.init.csr();
        csr.resident_bytes()
            + self.dirs.resident_bytes()
            + self.list.len() * 8
            + self.init.half_edge_count().div_ceil(64) * 8
            + csr.node_count() * 4 // tracker out-counts
    }

    /// Whether `v` (a slot of `u`'s range) is in `list[u]`.
    #[inline]
    fn list_has(&self, slot: usize) -> bool {
        self.list[slot >> 6] >> (slot & 63) & 1 == 1
    }

    fn is_sink_at(&self, idx: usize) -> bool {
        self.dirs.is_sink_at(idx)
    }
}

impl ReversalEngine for FrontierPrEngine {
    // `instance()` stays the default `None`: this engine exists so the
    // map-backed representation never materializes.

    fn dest(&self) -> NodeId {
        self.init.dest()
    }

    fn csr(&self) -> &Arc<CsrGraph> {
        self.init.csr()
    }

    fn algorithm_name(&self) -> &'static str {
        "PR"
    }

    fn is_sink(&self, u: NodeId) -> bool {
        self.dirs.is_sink(u)
    }

    fn enabled(&self) -> &[NodeId] {
        self.tracker.enabled()
    }

    fn plan_step(&self, u: NodeId, scratch: &mut StepScratch) -> StepOutcome {
        assert_ne!(u, self.dest(), "destination {u} never takes steps");
        let csr = self.init.csr();
        let ui = csr.index_of(u).expect("stepping node exists");
        assert!(
            self.is_sink_at(ui),
            "reverse({u}) precondition: {u} must be a sink"
        );
        // The exact rule of `pr_select_targets`: reverse the neighbors
        // not in `list[u]`, unless the list holds all of them, in which
        // case reverse everything. Neighbor slots are ascending by id.
        let r = csr.slots(ui);
        let list_is_full = count_bits_in_range(&self.list, r.start, r.end) == csr.degree(ui);
        scratch.clear();
        for slot in r {
            if list_is_full || !self.list_has(slot) {
                scratch.reversed.push(csr.node(csr.target(slot)));
            }
        }
        StepOutcome {
            node_idx: ui,
            reversal_count: scratch.reversed.len(),
            dummy: false,
        }
    }

    fn apply_planned(&mut self, u: NodeId, reversed: &[NodeId], _aux: PlanAux) {
        let csr = Arc::clone(self.init.csr());
        let ui = csr.index_of(u).expect("planned node");
        // One pass over u's slot range does all three effects of
        // `pr_apply_targets`: reverse each planned edge (both copies),
        // record u in the reversed neighbor's list (the twin slot's bit),
        // and — afterwards — empty list[u].
        let mut k = 0;
        for slot in csr.slots(ui) {
            if k == reversed.len() {
                break;
            }
            if csr.node(csr.target(slot)) == reversed[k] {
                self.dirs.reverse_outward_at(slot);
                let twin = csr.twin(slot);
                self.list[twin >> 6] |= 1 << (twin & 63);
                k += 1;
            }
        }
        assert_eq!(
            k,
            reversed.len(),
            "planned targets must be an ascending subset of the node's neighbors"
        );
        let r = csr.slots(ui);
        clear_bits_in_range(&mut self.list, r.start, r.end);
        self.tracker.record_step(&csr, u, reversed);
    }

    fn orientation(&self) -> Orientation {
        self.dirs.orientation()
    }

    fn begin_round(&mut self) {
        self.tracker.begin_batch();
    }

    fn end_round(&mut self) {
        self.tracker.end_batch();
    }

    fn reset(&mut self) {
        self.dirs = MirroredDirs::from_csr_instance(&self.init);
        self.list.fill(0);
        self.tracker = EnabledTracker::from_dirs(&self.dirs, self.init.dest());
    }
}

impl FrontierEngine for FrontierPrEngine {
    fn csr_instance(&self) -> &CsrInstance {
        &self.init
    }

    fn resident_bytes(&self) -> usize {
        FrontierPrEngine::resident_bytes(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::PrEngine;
    use crate::engine::{run_engine, run_engine_frontier, SchedulePolicy, DEFAULT_MAX_STEPS};
    use lr_graph::{generate, stream};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn bit_range_helpers_agree_with_naive_loops() {
        let mut words = vec![0u64; 4];
        for slot in [0usize, 3, 63, 64, 127, 128, 200, 255] {
            words[slot >> 6] |= 1 << (slot & 63);
        }
        let naive = |w: &[u64], a: usize, b: usize| {
            (a..b).filter(|&s| w[s >> 6] >> (s & 63) & 1 == 1).count()
        };
        for (a, b) in [
            (0, 256),
            (0, 1),
            (3, 64),
            (63, 65),
            (64, 128),
            (5, 200),
            (10, 10),
        ] {
            assert_eq!(
                count_bits_in_range(&words, a, b),
                naive(&words, a, b),
                "{a}..{b}"
            );
        }
        let mut cleared = words.clone();
        clear_bits_in_range(&mut cleared, 63, 129);
        for s in 0..256 {
            let expect = if (63..129).contains(&s) {
                0
            } else {
                words[s >> 6] >> (s & 63) & 1
            };
            assert_eq!(cleared[s >> 6] >> (s & 63) & 1, expect, "slot {s}");
        }
        let mut set = words.clone();
        set_bits_in_range(&mut set, 62, 130);
        for s in 0..256 {
            let expect = if (62..130).contains(&s) {
                1
            } else {
                words[s >> 6] >> (s & 63) & 1
            };
            assert_eq!(set[s >> 6] >> (s & 63) & 1, expect, "slot {s}");
        }
        let mut one = words.clone();
        set_bits_in_range(&mut one, 130, 131);
        assert_eq!(one[2] >> 2 & 1, 1);
    }

    #[test]
    fn family_names_match_engine_reports_and_kinds_round_trip() {
        for family in FrontierFamily::ALL {
            let e = family.engine(stream::chain_away(4));
            assert_eq!(e.algorithm_name(), family.name());
            assert!(e.instance().is_none(), "{} must stay flat", family.name());
            assert_eq!(e.csr_instance().node_count(), 4);
            assert!(FrontierEngine::resident_bytes(e.as_ref()) > 0);
        }
        assert_eq!(
            FrontierFamily::Bll(BllLabeling::FullReversal).name(),
            "BLL[FR]"
        );
        for kind in AlgorithmKind::ALL {
            assert_eq!(FrontierFamily::from(kind).name(), kind.name());
        }
    }

    #[test]
    fn map_engine_reference_agrees_with_the_flat_engine() {
        let inst = generate::random_connected(12, 6, 42);
        let flat = stream::random_connected(12, 6, 42);
        for family in FrontierFamily::ALL {
            let mut a = family.engine(flat.clone());
            let mut b = family.map_engine(&inst);
            let sa =
                run_engine_frontier(a.as_mut(), SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
            let sb = run_engine(b.as_mut(), SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
            assert_eq!(sa, sb, "{}", family.name());
            assert_eq!(a.orientation(), b.orientation(), "{}", family.name());
        }
    }

    #[test]
    fn first_step_with_empty_list_reverses_everything() {
        let mut e = FrontierPrEngine::new(stream::chain_away(3));
        let step = e.step(n(2));
        assert_eq!(step.reversed, vec![n(1)]);
        assert!(!e.is_sink(n(2)));
    }

    #[test]
    fn list_members_are_spared() {
        let mut e = FrontierPrEngine::new(stream::chain_away(4));
        e.step(n(3)); // list[2] = {3}
        let step = e.step(n(2)); // spares 3
        assert_eq!(step.reversed, vec![n(1)]);
    }

    #[test]
    fn matches_map_backed_pr_engine_step_for_step() {
        for seed in 0..8 {
            let inst = generate::random_connected(24, 20, 300 + seed);
            let flat = stream::random_connected(24, 20, 300 + seed);
            let mut a = FrontierPrEngine::new(flat);
            let mut b = PrEngine::new(&inst);
            let mut steps = 0;
            loop {
                assert_eq!(a.enabled(), b.enabled(), "seed {seed}");
                let Some(&u) = a.enabled().first() else { break };
                let sa = a.step(u);
                let sb = b.step(u);
                assert_eq!(sa, sb, "seed {seed} step {steps}");
                steps += 1;
                assert!(steps < 100_000);
            }
            assert_eq!(a.orientation(), b.orientation());
        }
    }

    #[test]
    fn run_engine_frontier_equals_run_engine_on_the_flat_engine() {
        let mut a = FrontierPrEngine::new(stream::grid_away(9, 11));
        let mut b = a.clone();
        let sa = run_engine(&mut a, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        let sb = run_engine_frontier(&mut b, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        assert_eq!(sa, sb);
        assert_eq!(a.orientation(), b.orientation());
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut e = FrontierPrEngine::new(stream::grid_away(4, 5));
        let fresh = e.clone();
        run_engine_frontier(&mut e, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        assert!(e.is_terminated());
        e.reset();
        assert_eq!(e.dirs(), fresh.dirs());
        assert_eq!(e.enabled(), fresh.enabled());
    }

    #[test]
    fn resident_bytes_stays_within_the_scale_budget() {
        let e = FrontierPrEngine::new(stream::grid_away(32, 32));
        let he = 2 * (2 * 32 * 31); // grid edge count × 2
        assert!(
            e.resident_bytes() <= 16 * he,
            "{} bytes for {} half-edges",
            e.resident_bytes(),
            he
        );
    }
}
