//! A flat, CSR-native Partial Reversal engine for million-node scale.
//!
//! [`FrontierPrEngine`] implements the exact transition function of
//! Algorithm 3 (`OneStepPR`, see [`super::pr`]) — same target selection,
//! same list bookkeeping, same `"PR"` name in reports — over a
//! [`CsrInstance`] instead of a map-backed [`lr_graph::ReversalInstance`]:
//!
//! * edge directions are the bit-packed [`MirroredDirs`] (1 bit per
//!   half-edge slot, twin bit updated in the same pass);
//! * the per-node `list[u]` sets are **also** one bit per half-edge
//!   slot: the bit of slot `(u, v)` is set iff `v ∈ list[u]` — the paper
//!   only ever asks "is neighbor `v` in `list[u]`?" and "is the list
//!   full?", both of which are masked word reads over `u`'s slot range;
//! * the enabled set is the incremental [`EnabledTracker`], whose batch
//!   merge is the greedy-round boundary for
//!   [`crate::engine::run_engine_frontier`].
//!
//! Nothing in the engine's steady state is proportional to anything but
//! the CSR arrays (≈ 8 bytes/half-edge) and a few bitsets and per-node
//! words (≈ 0.4 bytes/half-edge + ~8 bytes/node), so a 1,000,000-node
//! instance runs in tens of megabytes where the map-backed frontend
//! would need gigabytes. The differential suite
//! (`tests/frontier_differential.rs`) pins it step-for-step to
//! [`super::PrEngine`] on every tested size and schedule.

use std::sync::Arc;

use lr_graph::{CsrGraph, CsrInstance, NodeId, Orientation};

use crate::alg::ReversalEngine;
use crate::{EnabledTracker, MirroredDirs, PlanAux, StepOutcome, StepScratch};

/// Pops (counts) the set bits of `words` within slot range `start..end`.
fn count_bits_in_range(words: &[u64], start: usize, end: usize) -> usize {
    if start >= end {
        return 0;
    }
    let (w0, w1) = (start >> 6, (end - 1) >> 6);
    let lo = !0u64 << (start & 63);
    let hi = !0u64 >> (63 - ((end - 1) & 63));
    if w0 == w1 {
        (words[w0] & lo & hi).count_ones() as usize
    } else {
        (words[w0] & lo).count_ones() as usize
            + (words[w1] & hi).count_ones() as usize
            + words[w0 + 1..w1]
                .iter()
                .map(|&w| w.count_ones() as usize)
                .sum::<usize>()
    }
}

/// Clears every bit of `words` within slot range `start..end`.
fn clear_bits_in_range(words: &mut [u64], start: usize, end: usize) {
    if start >= end {
        return;
    }
    let (w0, w1) = (start >> 6, (end - 1) >> 6);
    let lo = !0u64 << (start & 63);
    let hi = !0u64 >> (63 - ((end - 1) & 63));
    if w0 == w1 {
        words[w0] &= !(lo & hi);
    } else {
        words[w0] &= !lo;
        words[w1] &= !hi;
        for w in &mut words[w0 + 1..w1] {
            *w = 0;
        }
    }
}

/// `OneStepPR` (Algorithm 3) over a flat [`CsrInstance`]: bit-packed
/// directions, bit-packed lists, incremental enabled set.
#[derive(Debug, Clone)]
pub struct FrontierPrEngine {
    /// The initial configuration, retained for [`ReversalEngine::reset`]
    /// (an `Arc`'d CSR plus one bit per half-edge — cheap to keep).
    init: CsrInstance,
    dirs: MirroredDirs,
    /// `list[u] ∋ v` ⟺ the bit of slot `(u, v)` is set. Initially all
    /// clear (Algorithm 1/3 start with empty lists).
    list: Vec<u64>,
    tracker: EnabledTracker,
}

impl FrontierPrEngine {
    /// Creates the engine in the initial state of `inst`.
    pub fn new(inst: CsrInstance) -> Self {
        let dirs = MirroredDirs::from_csr_instance(&inst);
        let list = vec![0u64; inst.half_edge_count().div_ceil(64)];
        let tracker = EnabledTracker::from_dirs(&dirs, inst.dest());
        FrontierPrEngine {
            init: inst,
            dirs,
            list,
            tracker,
        }
    }

    /// The current bit-packed direction state.
    pub fn dirs(&self) -> &MirroredDirs {
        &self.dirs
    }

    /// Total resident bytes of the engine's steady state: the shared CSR
    /// arrays, the direction and list bitsets, the retained initial
    /// bitset, and the tracker's per-node out-counts. This is the number
    /// the `BENCH_pr7` memory rows report.
    pub fn resident_bytes(&self) -> usize {
        let csr = self.init.csr();
        csr.resident_bytes()
            + self.dirs.resident_bytes()
            + self.list.len() * 8
            + self.init.half_edge_count().div_ceil(64) * 8
            + csr.node_count() * 4 // tracker out-counts
    }

    /// Whether `v` (a slot of `u`'s range) is in `list[u]`.
    #[inline]
    fn list_has(&self, slot: usize) -> bool {
        self.list[slot >> 6] >> (slot & 63) & 1 == 1
    }

    fn is_sink_at(&self, idx: usize) -> bool {
        self.dirs.is_sink_at(idx)
    }
}

impl ReversalEngine for FrontierPrEngine {
    // `instance()` stays the default `None`: this engine exists so the
    // map-backed representation never materializes.

    fn dest(&self) -> NodeId {
        self.init.dest()
    }

    fn csr(&self) -> &Arc<CsrGraph> {
        self.init.csr()
    }

    fn algorithm_name(&self) -> &'static str {
        "PR"
    }

    fn is_sink(&self, u: NodeId) -> bool {
        self.dirs.is_sink(u)
    }

    fn enabled(&self) -> &[NodeId] {
        self.tracker.enabled()
    }

    fn plan_step(&self, u: NodeId, scratch: &mut StepScratch) -> StepOutcome {
        assert_ne!(u, self.dest(), "destination {u} never takes steps");
        let csr = self.init.csr();
        let ui = csr.index_of(u).expect("stepping node exists");
        assert!(
            self.is_sink_at(ui),
            "reverse({u}) precondition: {u} must be a sink"
        );
        // The exact rule of `pr_select_targets`: reverse the neighbors
        // not in `list[u]`, unless the list holds all of them, in which
        // case reverse everything. Neighbor slots are ascending by id.
        let r = csr.slots(ui);
        let list_is_full = count_bits_in_range(&self.list, r.start, r.end) == csr.degree(ui);
        scratch.clear();
        for slot in r {
            if list_is_full || !self.list_has(slot) {
                scratch.reversed.push(csr.node(csr.target(slot)));
            }
        }
        StepOutcome {
            node_idx: ui,
            reversal_count: scratch.reversed.len(),
            dummy: false,
        }
    }

    fn apply_planned(&mut self, u: NodeId, reversed: &[NodeId], _aux: PlanAux) {
        let csr = Arc::clone(self.init.csr());
        let ui = csr.index_of(u).expect("planned node");
        // One pass over u's slot range does all three effects of
        // `pr_apply_targets`: reverse each planned edge (both copies),
        // record u in the reversed neighbor's list (the twin slot's bit),
        // and — afterwards — empty list[u].
        let mut k = 0;
        for slot in csr.slots(ui) {
            if k == reversed.len() {
                break;
            }
            if csr.node(csr.target(slot)) == reversed[k] {
                self.dirs.reverse_outward_at(slot);
                let twin = csr.twin(slot);
                self.list[twin >> 6] |= 1 << (twin & 63);
                k += 1;
            }
        }
        assert_eq!(
            k,
            reversed.len(),
            "planned targets must be an ascending subset of the node's neighbors"
        );
        let r = csr.slots(ui);
        clear_bits_in_range(&mut self.list, r.start, r.end);
        self.tracker.record_step(&csr, u, reversed);
    }

    fn orientation(&self) -> Orientation {
        self.dirs.orientation()
    }

    fn begin_round(&mut self) {
        self.tracker.begin_batch();
    }

    fn end_round(&mut self) {
        self.tracker.end_batch();
    }

    fn reset(&mut self) {
        self.dirs = MirroredDirs::from_csr_instance(&self.init);
        self.list.fill(0);
        self.tracker = EnabledTracker::from_dirs(&self.dirs, self.init.dest());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::PrEngine;
    use crate::engine::{run_engine, run_engine_frontier, SchedulePolicy, DEFAULT_MAX_STEPS};
    use lr_graph::{generate, stream};

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn bit_range_helpers_agree_with_naive_loops() {
        let mut words = vec![0u64; 4];
        for slot in [0usize, 3, 63, 64, 127, 128, 200, 255] {
            words[slot >> 6] |= 1 << (slot & 63);
        }
        let naive = |w: &[u64], a: usize, b: usize| {
            (a..b).filter(|&s| w[s >> 6] >> (s & 63) & 1 == 1).count()
        };
        for (a, b) in [
            (0, 256),
            (0, 1),
            (3, 64),
            (63, 65),
            (64, 128),
            (5, 200),
            (10, 10),
        ] {
            assert_eq!(
                count_bits_in_range(&words, a, b),
                naive(&words, a, b),
                "{a}..{b}"
            );
        }
        let mut cleared = words.clone();
        clear_bits_in_range(&mut cleared, 63, 129);
        for s in 0..256 {
            let expect = if (63..129).contains(&s) {
                0
            } else {
                words[s >> 6] >> (s & 63) & 1
            };
            assert_eq!(cleared[s >> 6] >> (s & 63) & 1, expect, "slot {s}");
        }
    }

    #[test]
    fn first_step_with_empty_list_reverses_everything() {
        let mut e = FrontierPrEngine::new(stream::chain_away(3));
        let step = e.step(n(2));
        assert_eq!(step.reversed, vec![n(1)]);
        assert!(!e.is_sink(n(2)));
    }

    #[test]
    fn list_members_are_spared() {
        let mut e = FrontierPrEngine::new(stream::chain_away(4));
        e.step(n(3)); // list[2] = {3}
        let step = e.step(n(2)); // spares 3
        assert_eq!(step.reversed, vec![n(1)]);
    }

    #[test]
    fn matches_map_backed_pr_engine_step_for_step() {
        for seed in 0..8 {
            let inst = generate::random_connected(24, 20, 300 + seed);
            let flat = stream::random_connected(24, 20, 300 + seed);
            let mut a = FrontierPrEngine::new(flat);
            let mut b = PrEngine::new(&inst);
            let mut steps = 0;
            loop {
                assert_eq!(a.enabled(), b.enabled(), "seed {seed}");
                let Some(&u) = a.enabled().first() else { break };
                let sa = a.step(u);
                let sb = b.step(u);
                assert_eq!(sa, sb, "seed {seed} step {steps}");
                steps += 1;
                assert!(steps < 100_000);
            }
            assert_eq!(a.orientation(), b.orientation());
        }
    }

    #[test]
    fn run_engine_frontier_equals_run_engine_on_the_flat_engine() {
        let mut a = FrontierPrEngine::new(stream::grid_away(9, 11));
        let mut b = a.clone();
        let sa = run_engine(&mut a, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        let sb = run_engine_frontier(&mut b, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        assert_eq!(sa, sb);
        assert_eq!(a.orientation(), b.orientation());
    }

    #[test]
    fn reset_restores_the_initial_state() {
        let mut e = FrontierPrEngine::new(stream::grid_away(4, 5));
        let fresh = e.clone();
        run_engine_frontier(&mut e, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        assert!(e.is_terminated());
        e.reset();
        assert_eq!(e.dirs(), fresh.dirs());
        assert_eq!(e.enabled(), fresh.enabled());
    }

    #[test]
    fn resident_bytes_stays_within_the_scale_budget() {
        let e = FrontierPrEngine::new(stream::grid_away(32, 32));
        let he = 2 * (2 * 32 * 31); // grid edge count × 2
        assert!(
            e.resident_bytes() <= 16 * he,
            "{} bytes for {} half-edges",
            e.resident_bytes(),
            he
        );
    }
}
