//! The link-reversal algorithms: the paper's three Partial Reversal
//! automata, Full Reversal, the Gafni–Bertsekas height formulations, and a
//! labeled-reversal generalization.
//!
//! Every algorithm is available in two forms:
//!
//! * an **engine** ([`ReversalEngine`]) — an imperative, in-place state
//!   machine used by the run loops and benchmarks; and
//! * an **automaton** ([`lr_ioa::Automaton`]) — a pure transition system
//!   with cloneable states, used by the model checker and the simulation
//!   relation machinery.
//!
//! Both forms share the same transition functions, so what is model-checked
//! is what is benchmarked.

mod bll;
mod full;
mod heights;
mod newpr;
mod pr;

pub use bll::{BllEngine, BllLabeling, BllState};
pub use full::{FullReversalAutomaton, FullReversalEngine, FullReversalState};
pub use heights::{PairHeight, PairHeightsEngine, TripleHeight, TripleHeightsEngine};
pub use newpr::{newpr_step, NewPrAutomaton, NewPrEngine, NewPrState, Parity};
pub use pr::{
    onestep_pr_step, pr_reverse_set, OneStepPrAutomaton, PrEngine, PrSetAutomaton, PrState,
    ReverseSet,
};

use std::sync::Arc;

use lr_graph::{CsrGraph, NodeId, Orientation, ReversalInstance};

use crate::ReversalStep;

/// An imperative link-reversal state machine over a fixed instance.
///
/// A node may step when it is a sink and is not the destination; `step`
/// performs one node's reversal in place. The greedy/random run loops in
/// [`crate::engine`] drive engines to termination.
///
/// Every engine maintains its enabled set **incrementally** (via
/// [`crate::EnabledTracker`]): [`ReversalEngine::enabled`] is an O(1)
/// borrow of the current sorted sink set and
/// [`ReversalEngine::is_terminated`] an O(1) emptiness check, instead of
/// the O(n·Δ) whole-graph rescan the pre-PR-2 engines performed before
/// every step.
pub trait ReversalEngine {
    /// The instance this engine runs on.
    fn instance(&self) -> &ReversalInstance;

    /// The CSR snapshot of the instance's graph shared by this engine's
    /// state (dense `NodeId → usize` indexing for run-loop work vectors).
    fn csr(&self) -> &Arc<CsrGraph>;

    /// A short algorithm name for reports ("FR", "PR", "NewPR", ...).
    fn algorithm_name(&self) -> &'static str;

    /// Whether `u` currently is a sink (all incident edges incoming).
    ///
    /// Computed directly from the engine's direction state — **not** from
    /// the incremental enabled set — so differential tests can cross-check
    /// the two.
    fn is_sink(&self, u: NodeId) -> bool;

    /// The nodes currently allowed to take a step — all sinks except the
    /// destination, ascending — as an incrementally maintained view.
    /// O(1); no allocation.
    fn enabled(&self) -> &[NodeId];

    /// The enabled nodes as an owned vector (compatibility wrapper over
    /// [`ReversalEngine::enabled`]).
    fn enabled_nodes(&self) -> Vec<NodeId> {
        self.enabled().to_vec()
    }

    /// Performs node `u`'s reversal step.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not enabled (not a sink, or is the destination) —
    /// that is a scheduling bug, not a runtime condition.
    fn step(&mut self, u: NodeId) -> ReversalStep;

    /// The current single-copy orientation of the graph.
    fn orientation(&self) -> Orientation;

    /// Whether the execution has terminated (no enabled node). For
    /// connected instances this is exactly destination-orientedness. O(1).
    fn is_terminated(&self) -> bool {
        self.enabled().is_empty()
    }

    /// Restores the initial state.
    fn reset(&mut self);
}

/// Identifies an algorithm for table rows and CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AlgorithmKind {
    /// Full Reversal (§1).
    FullReversal,
    /// Partial Reversal in its list-based form (Algorithm 1 / 3).
    PartialReversal,
    /// The paper's NewPR (Algorithm 2).
    NewPr,
    /// Gafni–Bertsekas pair heights (full reversal by lexicographic order).
    PairHeights,
    /// Gafni–Bertsekas triple heights (partial reversal by lexicographic
    /// order).
    TripleHeights,
}

impl AlgorithmKind {
    /// All kinds, for iteration in experiments.
    pub const ALL: [AlgorithmKind; 5] = [
        AlgorithmKind::FullReversal,
        AlgorithmKind::PartialReversal,
        AlgorithmKind::NewPr,
        AlgorithmKind::PairHeights,
        AlgorithmKind::TripleHeights,
    ];

    /// A stable display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::FullReversal => "FR",
            AlgorithmKind::PartialReversal => "PR",
            AlgorithmKind::NewPr => "NewPR",
            AlgorithmKind::PairHeights => "GB-pair",
            AlgorithmKind::TripleHeights => "GB-triple",
        }
    }

    /// Builds a fresh engine of this kind over `inst`.
    pub fn engine<'a>(self, inst: &'a ReversalInstance) -> Box<dyn ReversalEngine + 'a> {
        match self {
            AlgorithmKind::FullReversal => Box::new(FullReversalEngine::new(inst)),
            AlgorithmKind::PartialReversal => Box::new(PrEngine::new(inst)),
            AlgorithmKind::NewPr => Box::new(NewPrEngine::new(inst)),
            AlgorithmKind::PairHeights => Box::new(PairHeightsEngine::new(inst)),
            AlgorithmKind::TripleHeights => Box::new(TripleHeightsEngine::new(inst)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_graph::generate;

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::BTreeSet<_> =
            AlgorithmKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), AlgorithmKind::ALL.len());
    }

    #[test]
    fn engines_constructed_for_all_kinds() {
        let inst = generate::chain_away(4);
        for kind in AlgorithmKind::ALL {
            let e = kind.engine(&inst);
            assert_eq!(e.instance().dest, inst.dest);
            assert!(!e.is_terminated(), "{} should have work", kind.name());
            assert_eq!(e.enabled_nodes(), vec![lr_graph::NodeId::new(3)]);
        }
    }
}
