//! The link-reversal algorithms: the paper's three Partial Reversal
//! automata, Full Reversal, the Gafni–Bertsekas height formulations, and a
//! labeled-reversal generalization.
//!
//! Every algorithm is available in two forms:
//!
//! * an **engine** ([`ReversalEngine`]) — an imperative, in-place state
//!   machine used by the run loops and benchmarks; and
//! * an **automaton** ([`lr_ioa::Automaton`]) — a pure transition system
//!   with cloneable states, used by the model checker and the simulation
//!   relation machinery.
//!
//! Both forms share the same transition functions, so what is model-checked
//! is what is benchmarked.

mod bll;
mod frontier;
mod full;
mod heights;
mod newpr;
mod pr;

pub use bll::{BllEngine, BllLabeling, BllState, FrontierBllEngine};
pub use frontier::{FrontierEngine, FrontierFamily, FrontierPrEngine};
pub use full::{FrontierFrEngine, FullReversalAutomaton, FullReversalEngine, FullReversalState};
pub use heights::{
    FrontierPairHeightsEngine, FrontierTripleHeightsEngine, PairHeight, PairHeightsEngine,
    TripleHeight, TripleHeightsEngine,
};
pub use newpr::{newpr_step, FrontierNewPrEngine, NewPrAutomaton, NewPrEngine, NewPrState, Parity};
pub use pr::{
    onestep_pr_step, pr_reverse_set, OneStepPrAutomaton, PrEngine, PrSetAutomaton, PrState,
    ReverseSet,
};

use std::sync::Arc;

use lr_graph::{CsrGraph, CsrInstance, NodeId, Orientation, ReversalInstance};

use crate::{PlanAux, ReversalStep, StepOutcome, StepScratch};

/// An imperative link-reversal state machine over a fixed instance.
///
/// A node may step when it is a sink and is not the destination. The
/// greedy/random run loops in [`crate::engine`] drive engines to
/// termination.
///
/// Every engine maintains its enabled set **incrementally** (via
/// [`crate::EnabledTracker`]): [`ReversalEngine::enabled`] is an O(1)
/// borrow of the current sorted sink set and
/// [`ReversalEngine::is_terminated`] an O(1) emptiness check, instead of
/// the O(n·Δ) whole-graph rescan the pre-PR-2 engines performed before
/// every step.
///
/// # The step pipeline
///
/// Since PR 3 a step is split into a read-only **plan** and a mutating
/// **apply**:
///
/// * [`ReversalEngine::plan_step`] computes the step's reversal targets
///   against the current state into a caller-owned [`StepScratch`]
///   without mutating anything;
/// * [`ReversalEngine::apply_planned`] executes a previously planned
///   step in place;
/// * [`ReversalEngine::step_into`] is plan + apply — the
///   **zero-allocation hot path** the run loops use (one reusable
///   scratch per run);
/// * [`ReversalEngine::step`] is the allocating compatibility wrapper
///   (fresh buffer per call, owned [`ReversalStep`] result) retained
///   for traces, tests, and the automaton cross-checks.
///
/// Because the sinks of one greedy round are pairwise non-adjacent, a
/// plan computed against the pre-round state equals the plan a
/// sequential schedule would compute mid-round — which is what lets
/// [`crate::engine::run_engine_parallel`] fan the plan phase out across
/// worker threads and still produce bit-identical executions.
///
/// `Sync` is a supertrait so `&dyn ReversalEngine` can be shared with
/// those plan workers; engines hold only plain data and are naturally
/// `Sync`.
pub trait ReversalEngine: Sync {
    /// The map-backed instance this engine runs on, when it was built
    /// from a [`ReversalInstance`] frontend. Flat CSR-native engines
    /// (built from a streaming [`lr_graph::CsrInstance`], whose whole
    /// point is to never materialize the map representation) return
    /// `None`; callers that genuinely need the map form — trace
    /// recording, the invariant checkers — must request a map-backed
    /// engine.
    fn instance(&self) -> Option<&ReversalInstance> {
        None
    }

    /// The destination node of the instance (never takes steps).
    fn dest(&self) -> NodeId;

    /// The CSR snapshot of the instance's graph shared by this engine's
    /// state (dense `NodeId → usize` indexing for run-loop work vectors).
    fn csr(&self) -> &Arc<CsrGraph>;

    /// A short algorithm name for reports ("FR", "PR", "NewPR", ...).
    fn algorithm_name(&self) -> &'static str;

    /// Whether `u` currently is a sink (all incident edges incoming).
    ///
    /// Computed directly from the engine's direction state — **not** from
    /// the incremental enabled set — so differential tests can cross-check
    /// the two.
    fn is_sink(&self, u: NodeId) -> bool;

    /// The nodes currently allowed to take a step — all sinks except the
    /// destination, ascending — as an incrementally maintained view.
    /// O(1); no allocation.
    fn enabled(&self) -> &[NodeId];

    /// The enabled nodes as an owned vector.
    ///
    /// Compatibility wrapper over [`ReversalEngine::enabled`] that
    /// allocates a fresh `Vec` on every call. **Prefer the borrowed
    /// [`ReversalEngine::enabled`] slice** (and `.to_vec()` it yourself
    /// on the rare occasion an owned snapshot is genuinely needed); this
    /// wrapper only survives for source compatibility with pre-PR-2
    /// callers.
    #[doc(hidden)]
    fn enabled_nodes(&self) -> Vec<NodeId> {
        self.enabled().to_vec()
    }

    /// Plans node `u`'s reversal step against the **current** state
    /// without mutating it: writes the reversed neighbors (ascending)
    /// into `scratch` and returns the step's [`StepOutcome`].
    ///
    /// # Panics
    ///
    /// Panics if `u` is not enabled (not a sink, or is the destination) —
    /// that is a scheduling bug, not a runtime condition.
    fn plan_step(&self, u: NodeId, scratch: &mut StepScratch) -> StepOutcome;

    /// Applies a step previously planned by [`ReversalEngine::plan_step`]
    /// for `u`: `reversed` is the planned target list and `aux` the
    /// plan's payload. The state must not have changed in a way that
    /// affects `u`'s plan in between (the non-adjacency of a greedy
    /// round's sinks guarantees this for whole-round batches).
    fn apply_planned(&mut self, u: NodeId, reversed: &[NodeId], aux: PlanAux);

    /// Performs node `u`'s reversal step through the caller-owned
    /// `scratch`, reversing **no heap allocation** in steady state: the
    /// reversed-neighbor list is written into the reusable buffer and
    /// the returned [`StepOutcome`] is `Copy`. See [`StepScratch`] for
    /// the ownership contract.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not enabled.
    fn step_into(&mut self, u: NodeId, scratch: &mut StepScratch) -> StepOutcome {
        let outcome = self.plan_step(u, scratch);
        self.apply_planned(u, &scratch.reversed, scratch.aux);
        outcome
    }

    /// Performs node `u`'s reversal step, returning an owned
    /// [`ReversalStep`].
    ///
    /// Thin compatibility wrapper over [`ReversalEngine::step_into`]
    /// that allocates a fresh buffer per call — exactly the pre-PR-3
    /// behavior. Run loops use `step_into`; traces, tests, and one-shot
    /// callers keep using this.
    ///
    /// # Panics
    ///
    /// Panics if `u` is not enabled (not a sink, or is the destination) —
    /// that is a scheduling bug, not a runtime condition.
    fn step(&mut self, u: NodeId) -> ReversalStep {
        let mut scratch = StepScratch::new();
        let outcome = self.step_into(u, &mut scratch);
        ReversalStep {
            node: u,
            reversed: scratch.reversed,
            dummy: outcome.dummy,
        }
    }

    /// Marks the start of a greedy round whose steps will all be applied
    /// before the enabled view is read again. Engines forward this to
    /// [`crate::EnabledTracker::begin_batch`] so the round's enabled-set
    /// edits collapse into one merge; the default is a no-op.
    fn begin_round(&mut self) {}

    /// Closes a round opened by [`ReversalEngine::begin_round`],
    /// bringing [`ReversalEngine::enabled`] current.
    fn end_round(&mut self) {}

    /// The current single-copy orientation of the graph.
    fn orientation(&self) -> Orientation;

    /// Whether the execution has terminated (no enabled node). For
    /// connected instances this is exactly destination-orientedness. O(1).
    fn is_terminated(&self) -> bool {
        self.enabled().is_empty()
    }

    /// Restores the initial state.
    fn reset(&mut self);
}

/// Identifies an algorithm for table rows and CLI flags.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum AlgorithmKind {
    /// Full Reversal (§1).
    FullReversal,
    /// Partial Reversal in its list-based form (Algorithm 1 / 3).
    PartialReversal,
    /// The paper's NewPR (Algorithm 2).
    NewPr,
    /// Gafni–Bertsekas pair heights (full reversal by lexicographic order).
    PairHeights,
    /// Gafni–Bertsekas triple heights (partial reversal by lexicographic
    /// order).
    TripleHeights,
}

impl AlgorithmKind {
    /// All kinds, for iteration in experiments.
    pub const ALL: [AlgorithmKind; 5] = [
        AlgorithmKind::FullReversal,
        AlgorithmKind::PartialReversal,
        AlgorithmKind::NewPr,
        AlgorithmKind::PairHeights,
        AlgorithmKind::TripleHeights,
    ];

    /// A stable display name.
    pub fn name(self) -> &'static str {
        match self {
            AlgorithmKind::FullReversal => "FR",
            AlgorithmKind::PartialReversal => "PR",
            AlgorithmKind::NewPr => "NewPR",
            AlgorithmKind::PairHeights => "GB-pair",
            AlgorithmKind::TripleHeights => "GB-triple",
        }
    }

    /// Builds a fresh **map-backed** engine of this kind over `inst` —
    /// the differential reference path. Callers that have (or can
    /// stream) a flat [`CsrInstance`] should prefer
    /// [`AlgorithmKind::frontier_engine`], the default fast path.
    pub fn engine<'a>(self, inst: &'a ReversalInstance) -> Box<dyn ReversalEngine + 'a> {
        match self {
            AlgorithmKind::FullReversal => Box::new(FullReversalEngine::new(inst)),
            AlgorithmKind::PartialReversal => Box::new(PrEngine::new(inst)),
            AlgorithmKind::NewPr => Box::new(NewPrEngine::new(inst)),
            AlgorithmKind::PairHeights => Box::new(PairHeightsEngine::new(inst)),
            AlgorithmKind::TripleHeights => Box::new(TripleHeightsEngine::new(inst)),
        }
    }

    /// Builds this kind's flat CSR-native [`FrontierEngine`] — the
    /// default execution substrate since PR 8, step-for-step identical
    /// to [`AlgorithmKind::engine`] by the frontier differential suite.
    pub fn frontier_engine(self, inst: CsrInstance) -> Box<dyn FrontierEngine> {
        FrontierFamily::from(self).engine(inst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lr_graph::generate;

    #[test]
    fn kind_names_are_distinct() {
        let names: std::collections::BTreeSet<_> =
            AlgorithmKind::ALL.iter().map(|k| k.name()).collect();
        assert_eq!(names.len(), AlgorithmKind::ALL.len());
    }

    #[test]
    fn engines_constructed_for_all_kinds() {
        let inst = generate::chain_away(4);
        for kind in AlgorithmKind::ALL {
            let e = kind.engine(&inst);
            assert_eq!(e.dest(), inst.dest);
            assert_eq!(e.instance().expect("map-backed engine").dest, inst.dest);
            assert!(!e.is_terminated(), "{} should have work", kind.name());
            assert_eq!(e.enabled(), &[lr_graph::NodeId::new(3)][..]);
            // The allocating compat wrapper must mirror the borrowed view.
            assert_eq!(e.enabled_nodes(), e.enabled().to_vec());
        }
    }

    #[test]
    fn frontier_engines_constructed_for_all_kinds() {
        let inst = generate::chain_away(4);
        let flat = lr_graph::CsrInstance::from_instance(&inst);
        for kind in AlgorithmKind::ALL {
            let e = kind.frontier_engine(flat.clone());
            assert_eq!(e.dest(), inst.dest);
            assert_eq!(e.algorithm_name(), kind.name());
            assert!(e.instance().is_none(), "{} must stay flat", kind.name());
            assert_eq!(e.enabled(), &[lr_graph::NodeId::new(3)][..]);
        }
    }

    #[test]
    fn default_step_wrapper_matches_step_into() {
        let inst = generate::chain_away(5);
        for kind in AlgorithmKind::ALL {
            let mut a = kind.engine(&inst);
            let mut b = kind.engine(&inst);
            let mut scratch = crate::StepScratch::new();
            let u = lr_graph::NodeId::new(4);
            let step = a.step(u);
            let outcome = b.step_into(u, &mut scratch);
            assert_eq!(step.reversed, scratch.reversed().to_vec());
            assert_eq!(step.reversal_count(), outcome.reversal_count);
            assert_eq!(step.dummy, outcome.dummy);
            assert_eq!(b.csr().node(outcome.node_idx), u);
            assert_eq!(a.enabled(), b.enabled());
        }
    }
}
