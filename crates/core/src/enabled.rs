//! Incremental enabled-set maintenance for reversal engines.
//!
//! A node is *enabled* when it is a sink (every incident edge incoming)
//! and is not the destination. The pre-PR-2 engines recomputed this set
//! by scanning all `n` nodes before every step — O(n·Δ) work per step on
//! executions whose steps each touch only Δ edges. [`EnabledTracker`]
//! exploits the locality of link reversal: after node `u` steps, only
//! `u` and the neighbors it reversed toward can change sink status, so
//! the enabled set can be maintained with O(Δ + s) work per step (s =
//! current enabled count: a binary search per changed node plus one
//! contiguous shift of the sorted vector) and no per-step allocation.
//! The shift keeps the view sorted so schedulers see exactly the order a
//! full scan would produce; s is bounded by the graph's independence
//! number and the shift is a cache-friendly memmove, so this term stays
//! far below the O(n·Δ) rescan it replaces even on sink-heavy workloads.
//!
//! The tracker is deliberately redundant state: it mirrors what a scan
//! of the underlying direction state would produce, and the differential
//! test suite (`tests/csr_differential.rs`) checks that mirror against a
//! retained naive-scan reference on every algorithm × schedule
//! combination.

use lr_graph::{CsrGraph, NodeId};

/// Incrementally maintained set of enabled nodes (sinks minus the
/// destination), kept sorted ascending so scheduling policies see the
/// same deterministic order a full scan would produce.
#[derive(Debug, Clone)]
pub struct EnabledTracker {
    /// Dense index of the destination (never enabled).
    dest_idx: usize,
    /// Per-node count of outgoing half-edges; a sink has count 0.
    out_count: Vec<u32>,
    /// Enabled nodes, ascending.
    enabled: Vec<NodeId>,
}

impl EnabledTracker {
    /// Builds the tracker by scanning every half-edge slot once:
    /// `edge_out(slot)` reports whether the slot's edge currently points
    /// *out of* its source node.
    pub fn new(csr: &CsrGraph, dest: NodeId, mut edge_out: impl FnMut(usize) -> bool) -> Self {
        let dest_idx = csr.index_of(dest).expect("destination is a node");
        let mut out_count = vec![0u32; csr.node_count()];
        for slot in 0..csr.half_edge_count() {
            if edge_out(slot) {
                out_count[csr.source(slot)] += 1;
            }
        }
        let enabled = (0..csr.node_count())
            .filter(|&i| i != dest_idx && csr.degree(i) > 0 && out_count[i] == 0)
            .map(|i| csr.node(i))
            .collect();
        EnabledTracker {
            dest_idx,
            out_count,
            enabled,
        }
    }

    /// Builds the tracker from a [`crate::MirroredDirs`] state.
    pub fn from_dirs(dirs: &crate::MirroredDirs, dest: NodeId) -> Self {
        EnabledTracker::new(dirs.csr(), dest, |slot| {
            dirs.dir_at(slot) == lr_graph::EdgeDir::Out
        })
    }

    /// The currently enabled nodes, ascending. O(1).
    pub fn enabled(&self) -> &[NodeId] {
        &self.enabled
    }

    /// Applies the enabled-set delta of one step: `u` reversed the edges
    /// to `reversed` outward. Only `u` and those neighbors are touched.
    ///
    /// # Panics
    ///
    /// Panics if `u` or a reversed neighbor is not a node of the graph.
    pub fn record_step(&mut self, csr: &CsrGraph, u: NodeId, reversed: &[NodeId]) {
        let ui = csr.index_of(u).expect("stepping node exists");
        self.out_count[ui] += reversed.len() as u32;
        if !reversed.is_empty() {
            // A dummy step (NewPR §4.1) reverses nothing: u stays a sink
            // and stays enabled. Otherwise it gained outgoing edges.
            self.remove(u);
        }
        for &v in reversed {
            let vi = csr.index_of(v).expect("reversed neighbor exists");
            debug_assert!(self.out_count[vi] > 0, "reversed edge was outgoing at {v}");
            self.out_count[vi] -= 1;
            if self.out_count[vi] == 0 && vi != self.dest_idx {
                // v had an outgoing edge, so degree(v) > 0 holds.
                self.insert(v);
            }
        }
    }

    fn insert(&mut self, u: NodeId) {
        if let Err(pos) = self.enabled.binary_search(&u) {
            self.enabled.insert(pos, u);
        }
    }

    fn remove(&mut self, u: NodeId) {
        if let Ok(pos) = self.enabled.binary_search(&u) {
            self.enabled.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MirroredDirs;
    use lr_graph::generate;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn initial_enabled_set_matches_scan() {
        let inst = generate::chain_away(5);
        let dirs = MirroredDirs::from_instance(&inst);
        let t = EnabledTracker::from_dirs(&dirs, inst.dest);
        assert_eq!(t.enabled(), &[n(4)]);
    }

    #[test]
    fn destination_is_never_enabled() {
        let inst = generate::chain_toward(4); // dest 0 is the unique sink
        let dirs = MirroredDirs::from_instance(&inst);
        let t = EnabledTracker::from_dirs(&dirs, inst.dest);
        assert!(t.enabled().is_empty());
    }

    #[test]
    fn step_delta_tracks_full_rescan() {
        let inst = generate::random_connected(14, 12, 77);
        let mut dirs = MirroredDirs::from_instance(&inst);
        let mut t = EnabledTracker::from_dirs(&dirs, inst.dest);
        let mut guard = 0;
        while let Some(&u) = t.enabled().first() {
            // Full-reversal step: reverse every incident edge.
            let reversed: Vec<NodeId> = inst.graph.neighbors(u).collect();
            for &v in &reversed {
                dirs.reverse_outward(u, v);
            }
            t.record_step(dirs.csr(), u, &reversed);
            let rescan: Vec<NodeId> = inst
                .graph
                .nodes()
                .filter(|&w| w != inst.dest && dirs.is_sink(w))
                .collect();
            assert_eq!(t.enabled(), &rescan[..], "tracker diverged from scan");
            guard += 1;
            assert!(guard < 100_000);
        }
    }

    #[test]
    fn empty_reversal_keeps_node_enabled() {
        let inst = generate::chain_away(3);
        let dirs = MirroredDirs::from_instance(&inst);
        let mut t = EnabledTracker::from_dirs(&dirs, inst.dest);
        assert_eq!(t.enabled(), &[n(2)]);
        t.record_step(dirs.csr(), n(2), &[]); // NewPR dummy step
        assert_eq!(t.enabled(), &[n(2)], "dummy step must not disable");
    }
}
