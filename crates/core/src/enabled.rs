//! Incremental enabled-set maintenance for reversal engines.
//!
//! A node is *enabled* when it is a sink (every incident edge incoming)
//! and is not the destination. The pre-PR-2 engines recomputed this set
//! by scanning all `n` nodes before every step — O(n·Δ) work per step on
//! executions whose steps each touch only Δ edges. [`EnabledTracker`]
//! exploits the locality of link reversal: after node `u` steps, only
//! `u` and the neighbors it reversed toward can change sink status, so
//! the enabled set can be maintained with O(Δ + s) work per step (s =
//! current enabled count: a binary search per changed node plus one
//! contiguous shift of the sorted vector) and no per-step allocation.
//! The shift keeps the view sorted so schedulers see exactly the order a
//! full scan would produce; s is bounded by the graph's independence
//! number and the shift is a cache-friendly memmove, so this term stays
//! far below the O(n·Δ) rescan it replaces even on sink-heavy workloads.
//!
//! The tracker is deliberately redundant state: it mirrors what a scan
//! of the underlying direction state would produce, and the differential
//! test suite (`tests/csr_differential.rs`) checks that mirror against a
//! retained naive-scan reference on every algorithm × schedule
//! combination.

use lr_graph::{CsrGraph, NodeId};

/// Incrementally maintained set of enabled nodes (sinks minus the
/// destination), kept sorted ascending so scheduling policies see the
/// same deterministic order a full scan would produce.
///
/// Two update modes:
///
/// * **immediate** (the default) — every [`EnabledTracker::record_step`]
///   edits the sorted vector in place (one binary search + contiguous
///   shift per changed node), keeping `enabled()` exact after every
///   step. Single-step schedulers need this.
/// * **batched** — between [`EnabledTracker::begin_batch`] and
///   [`EnabledTracker::end_batch`], `record_step` only accumulates
///   out-count deltas plus removal/insertion lists; `end_batch` merges
///   them into the sorted vector in **one linear pass**. Greedy rounds
///   use this: a round applies many steps without reading `enabled()`,
///   so the per-step O(s) shifts (s = current sink count) collapse into
///   a single O(s + round) merge. Because the enabled *set* is a pure
///   function of the out-counts, the merged result is bit-identical to
///   what per-step editing produces.
#[derive(Debug, Clone)]
pub struct EnabledTracker {
    /// Dense index of the destination (never enabled).
    dest_idx: usize,
    /// Per-node count of outgoing half-edges; a sink has count 0.
    out_count: Vec<u32>,
    /// Enabled nodes, ascending. Stale w.r.t. `removed`/`inserted` while
    /// a batch is open.
    enabled: Vec<NodeId>,
    /// Whether a batch is open.
    batching: bool,
    /// Batched: nodes that stepped and gained outgoing edges.
    removed: Vec<NodeId>,
    /// Batched: nodes whose out-count reached zero.
    inserted: Vec<NodeId>,
    /// Reusable merge target, swapped with `enabled` in `end_batch`.
    merge_buf: Vec<NodeId>,
}

impl EnabledTracker {
    /// Builds the tracker by scanning every half-edge slot once:
    /// `edge_out(slot, src)` reports whether the slot's edge currently
    /// points *out of* its source node `src` (passed by dense index so
    /// callers never resolve a slot back to its owner).
    pub fn new(
        csr: &CsrGraph,
        dest: NodeId,
        mut edge_out: impl FnMut(usize, usize) -> bool,
    ) -> Self {
        let dest_idx = csr.index_of(dest).expect("destination is a node");
        let mut out_count = vec![0u32; csr.node_count()];
        for (src, count) in out_count.iter_mut().enumerate() {
            // Per-node slot ranges instead of a per-slot `csr.source`
            // lookup: the source is the loop variable.
            *count = csr.slots(src).filter(|&slot| edge_out(slot, src)).count() as u32;
        }
        let enabled = (0..csr.node_count())
            .filter(|&i| i != dest_idx && csr.degree(i) > 0 && out_count[i] == 0)
            .map(|i| csr.node(i))
            .collect();
        EnabledTracker {
            dest_idx,
            out_count,
            enabled,
            batching: false,
            removed: Vec::new(),
            inserted: Vec::new(),
            merge_buf: Vec::new(),
        }
    }

    /// Builds the tracker from a [`crate::MirroredDirs`] state.
    pub fn from_dirs(dirs: &crate::MirroredDirs, dest: NodeId) -> Self {
        EnabledTracker::new(dirs.csr(), dest, |slot, _src| {
            dirs.dir_at(slot) == lr_graph::EdgeDir::Out
        })
    }

    /// The currently enabled nodes, ascending. O(1).
    ///
    /// While a batch is open the view reflects the state at
    /// [`EnabledTracker::begin_batch`]; [`EnabledTracker::end_batch`]
    /// brings it current.
    pub fn enabled(&self) -> &[NodeId] {
        &self.enabled
    }

    /// Opens a batch: subsequent [`EnabledTracker::record_step`] calls
    /// accumulate deltas instead of editing the sorted vector.
    ///
    /// # Panics
    ///
    /// Panics if a batch is already open.
    pub fn begin_batch(&mut self) {
        assert!(!self.batching, "batch already open");
        self.batching = true;
        self.removed.clear();
        self.inserted.clear();
    }

    /// Closes the batch, merging the accumulated removals and
    /// insertions into the sorted enabled vector in one linear pass.
    ///
    /// # Panics
    ///
    /// Panics if no batch is open.
    pub fn end_batch(&mut self) {
        assert!(self.batching, "no batch open");
        self.batching = false;
        // Steppers are recorded in schedule order, which greedy rounds
        // take ascending — but sort defensively so the merge never
        // depends on the caller's iteration order. Newly enabled nodes
        // arrive in reversal order and genuinely need the sort.
        self.removed.sort_unstable();
        self.inserted.sort_unstable();
        self.merge_buf.clear();
        let (mut i, mut j, mut k) = (0, 0, 0);
        while i < self.enabled.len() || j < self.inserted.len() {
            let take_inserted = j < self.inserted.len()
                && (i >= self.enabled.len() || self.inserted[j] < self.enabled[i]);
            if take_inserted {
                self.merge_buf.push(self.inserted[j]);
                j += 1;
            } else {
                let u = self.enabled[i];
                i += 1;
                if k < self.removed.len() && self.removed[k] == u {
                    k += 1;
                } else {
                    self.merge_buf.push(u);
                }
            }
        }
        debug_assert_eq!(k, self.removed.len(), "removed node was not enabled");
        std::mem::swap(&mut self.enabled, &mut self.merge_buf);
    }

    /// Applies the enabled-set delta of one step: `u` reversed the edges
    /// to `reversed` outward. Only `u` and those neighbors are touched.
    ///
    /// # Panics
    ///
    /// Panics if `u` or a reversed neighbor is not a node of the graph.
    pub fn record_step(&mut self, csr: &CsrGraph, u: NodeId, reversed: &[NodeId]) {
        let ui = csr.index_of(u).expect("stepping node exists");
        self.out_count[ui] += reversed.len() as u32;
        if !reversed.is_empty() {
            // A dummy step (NewPR §4.1) reverses nothing: u stays a sink
            // and stays enabled. Otherwise it gained outgoing edges.
            if self.batching {
                self.removed.push(u);
            } else {
                self.remove(u);
            }
        }
        for &v in reversed {
            let vi = csr.index_of(v).expect("reversed neighbor exists");
            debug_assert!(self.out_count[vi] > 0, "reversed edge was outgoing at {v}");
            self.out_count[vi] -= 1;
            if self.out_count[vi] == 0 && vi != self.dest_idx {
                // v had an outgoing edge, so degree(v) > 0 holds.
                if self.batching {
                    self.inserted.push(v);
                } else {
                    self.insert(v);
                }
            }
        }
    }

    fn insert(&mut self, u: NodeId) {
        if let Err(pos) = self.enabled.binary_search(&u) {
            self.enabled.insert(pos, u);
        }
    }

    fn remove(&mut self, u: NodeId) {
        if let Ok(pos) = self.enabled.binary_search(&u) {
            self.enabled.remove(pos);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::MirroredDirs;
    use lr_graph::generate;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn initial_enabled_set_matches_scan() {
        let inst = generate::chain_away(5);
        let dirs = MirroredDirs::from_instance(&inst);
        let t = EnabledTracker::from_dirs(&dirs, inst.dest);
        assert_eq!(t.enabled(), &[n(4)]);
    }

    #[test]
    fn destination_is_never_enabled() {
        let inst = generate::chain_toward(4); // dest 0 is the unique sink
        let dirs = MirroredDirs::from_instance(&inst);
        let t = EnabledTracker::from_dirs(&dirs, inst.dest);
        assert!(t.enabled().is_empty());
    }

    #[test]
    fn step_delta_tracks_full_rescan() {
        let inst = generate::random_connected(14, 12, 77);
        let mut dirs = MirroredDirs::from_instance(&inst);
        let mut t = EnabledTracker::from_dirs(&dirs, inst.dest);
        let mut guard = 0;
        while let Some(&u) = t.enabled().first() {
            // Full-reversal step: reverse every incident edge.
            let reversed: Vec<NodeId> = inst.graph.neighbors(u).collect();
            for &v in &reversed {
                dirs.reverse_outward(u, v);
            }
            t.record_step(dirs.csr(), u, &reversed);
            let rescan: Vec<NodeId> = inst
                .graph
                .nodes()
                .filter(|&w| w != inst.dest && dirs.is_sink(w))
                .collect();
            assert_eq!(t.enabled(), &rescan[..], "tracker diverged from scan");
            guard += 1;
            assert!(guard < 100_000);
        }
    }

    #[test]
    fn batched_round_matches_immediate_updates() {
        // Drive identical full-reversal greedy rounds through both
        // update modes; every round boundary must agree exactly.
        let inst = generate::random_connected(16, 14, 3);
        let mut dirs_a = MirroredDirs::from_instance(&inst);
        let mut dirs_b = dirs_a.clone();
        let mut a = EnabledTracker::from_dirs(&dirs_a, inst.dest); // immediate
        let mut b = EnabledTracker::from_dirs(&dirs_b, inst.dest); // batched
        let mut guard = 0;
        while !a.enabled().is_empty() {
            let round: Vec<NodeId> = a.enabled().to_vec();
            b.begin_batch();
            for &u in &round {
                let reversed: Vec<NodeId> = inst.graph.neighbors(u).collect();
                for &v in &reversed {
                    dirs_a.reverse_outward(u, v);
                    dirs_b.reverse_outward(u, v);
                }
                a.record_step(dirs_a.csr(), u, &reversed);
                b.record_step(dirs_b.csr(), u, &reversed);
            }
            b.end_batch();
            assert_eq!(a.enabled(), b.enabled(), "modes diverged");
            guard += 1;
            assert!(guard < 100_000);
        }
        assert!(b.enabled().is_empty());
    }

    #[test]
    #[should_panic(expected = "batch already open")]
    fn nested_batches_are_rejected() {
        let inst = generate::chain_away(3);
        let dirs = MirroredDirs::from_instance(&inst);
        let mut t = EnabledTracker::from_dirs(&dirs, inst.dest);
        t.begin_batch();
        t.begin_batch();
    }

    #[test]
    fn empty_reversal_keeps_node_enabled() {
        let inst = generate::chain_away(3);
        let dirs = MirroredDirs::from_instance(&inst);
        let mut t = EnabledTracker::from_dirs(&dirs, inst.dest);
        assert_eq!(t.enabled(), &[n(2)]);
        t.record_step(dirs.csr(), n(2), &[]); // NewPR dummy step
        assert_eq!(t.enabled(), &[n(2)], "dummy step must not disable");
    }
}
