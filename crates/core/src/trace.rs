//! Execution tracing: drive any engine while recording each step, then
//! render the trace as text or as a sequence of Graphviz DOT frames.
//!
//! Used by the examples for demonstration and by tests for debugging —
//! and itself a small reproduction artifact: the rendered trace shows the
//! exact reversal sets the paper's algorithms choose, side by side.

use std::fmt::Write as _;

use lr_graph::{dot, DirectedView, NodeId, Orientation, ReversalInstance};

use crate::alg::ReversalEngine;
use crate::engine::SchedulePolicy;
use crate::ReversalStep;

/// One recorded frame: the step taken and the orientation after it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceFrame {
    /// The step (node, reversed edges, dummy flag).
    pub step: ReversalStep,
    /// Orientation after the step.
    pub after: Orientation,
    /// Sinks (excluding the destination) after the step.
    pub sinks_after: Vec<NodeId>,
}

/// A recorded execution of one engine.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Algorithm name.
    pub algorithm: &'static str,
    /// The instance traced (cloned so the trace is self-contained).
    pub instance: ReversalInstance,
    /// Initial orientation (== `instance.init`).
    pub initial: Orientation,
    /// The recorded frames, in order.
    pub frames: Vec<TraceFrame>,
}

impl Trace {
    /// Runs `engine` to termination under `policy`, recording every step.
    ///
    /// # Panics
    ///
    /// Panics if the engine does not terminate within `max_steps`.
    pub fn record(
        engine: &mut dyn ReversalEngine,
        policy: SchedulePolicy,
        max_steps: usize,
    ) -> Self {
        use rand::rngs::SmallRng;
        use rand::seq::SliceRandom;
        use rand::SeedableRng;

        let instance = engine
            .instance()
            .expect("trace recording needs a map-backed engine")
            .clone();
        let algorithm = engine.algorithm_name();
        let initial = engine.orientation();
        let mut frames = Vec::new();
        let mut rng = match policy {
            SchedulePolicy::RandomSingle { seed } => Some(SmallRng::seed_from_u64(seed)),
            _ => None,
        };
        fn record_one(frames: &mut Vec<TraceFrame>, engine: &mut dyn ReversalEngine, u: NodeId) {
            let step = engine.step(u);
            let after = engine.orientation();
            // A trace frame keeps its own copy of the sink set, so the
            // borrowed view is snapshotted deliberately.
            let sinks_after = engine.enabled().to_vec();
            frames.push(TraceFrame {
                step,
                after,
                sinks_after,
            });
        }
        // Reusable greedy-round snapshot of the borrowed enabled view.
        let mut round: Vec<NodeId> = Vec::new();
        loop {
            if engine.is_terminated() {
                break;
            }
            assert!(
                frames.len() < max_steps,
                "{algorithm} did not terminate within {max_steps} steps"
            );
            match policy {
                SchedulePolicy::GreedyRounds => {
                    round.clear();
                    round.extend_from_slice(engine.enabled());
                    for &u in &round {
                        record_one(&mut frames, engine, u);
                    }
                }
                SchedulePolicy::RandomSingle { .. } => {
                    let rng = rng.as_mut().expect("rng for RandomSingle");
                    let u = *engine.enabled().choose(rng).expect("non-empty");
                    record_one(&mut frames, engine, u);
                }
                SchedulePolicy::FirstSingle => {
                    let u = *engine.enabled().first().expect("non-empty");
                    record_one(&mut frames, engine, u);
                }
                SchedulePolicy::LastSingle => {
                    let u = *engine.enabled().last().expect("non-empty");
                    record_one(&mut frames, engine, u);
                }
            }
        }
        Trace {
            algorithm,
            instance,
            initial,
            frames,
        }
    }

    /// Number of steps recorded.
    pub fn len(&self) -> usize {
        self.frames.len()
    }

    /// `true` when no step was taken (already destination-oriented).
    pub fn is_empty(&self) -> bool {
        self.frames.is_empty()
    }

    /// Total edge reversals.
    pub fn total_reversals(&self) -> usize {
        self.frames.iter().map(|f| f.step.reversal_count()).sum()
    }

    /// Number of dummy steps.
    pub fn dummy_steps(&self) -> usize {
        self.frames.iter().filter(|f| f.step.dummy).count()
    }

    /// A compact human-readable rendering, one line per step.
    ///
    /// ```text
    /// step 1: n3 reverses {n2}            sinks after: [n2]
    /// step 2: n2 reverses {n1}            sinks after: [n1]
    /// ...
    /// ```
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} on {} nodes (dest {}), {} steps, {} reversals, {} dummies",
            self.algorithm,
            self.instance.node_count(),
            self.instance.dest,
            self.len(),
            self.total_reversals(),
            self.dummy_steps()
        );
        for (i, f) in self.frames.iter().enumerate() {
            let targets: Vec<String> = f.step.reversed.iter().map(|v| v.to_string()).collect();
            let kind = if f.step.dummy { " (dummy)" } else { "" };
            let sinks: Vec<String> = f.sinks_after.iter().map(|v| v.to_string()).collect();
            let _ = writeln!(
                out,
                "step {:>3}: {} reverses {{{}}}{kind}  sinks after: [{}]",
                i + 1,
                f.step.node,
                targets.join(", "),
                sinks.join(", ")
            );
        }
        out
    }

    /// Renders the trace as a sequence of DOT digraphs (initial state
    /// plus one frame per step), suitable for `dot -Tpng` batch
    /// rendering.
    pub fn render_dot_frames(&self) -> Vec<String> {
        let mut frames = Vec::with_capacity(self.frames.len() + 1);
        let opts = |name: String| dot::DotOptions {
            destination: Some(self.instance.dest),
            highlight_sinks: true,
            name: Some(name),
        };
        frames.push(dot::to_dot(
            &DirectedView::new(&self.instance.graph, &self.initial),
            &opts("initial".into()),
        ));
        for (i, f) in self.frames.iter().enumerate() {
            frames.push(dot::to_dot(
                &DirectedView::new(&self.instance.graph, &f.after),
                &opts(format!("step_{}", i + 1)),
            ));
        }
        frames
    }

    /// Validates the internal consistency of the trace: orientations
    /// evolve exactly by the recorded reversal sets and end
    /// destination-oriented.
    ///
    /// # Errors
    ///
    /// Returns a description of the first inconsistency.
    pub fn validate(&self) -> Result<(), String> {
        let mut current = self.initial.clone();
        for (i, f) in self.frames.iter().enumerate() {
            for &v in &f.step.reversed {
                if !current.points_from_to(v, f.step.node) {
                    return Err(format!(
                        "frame {i}: edge {{{}, {v}}} was not incoming before reversal",
                        f.step.node
                    ));
                }
                current
                    .reverse(f.step.node, v)
                    .map_err(|e| format!("frame {i}: {e}"))?;
            }
            if current != f.after {
                return Err(format!(
                    "frame {i}: recorded orientation does not match replay"
                ));
            }
        }
        let view = DirectedView::new(&self.instance.graph, &current);
        if !view.is_destination_oriented(self.instance.dest) {
            return Err("trace does not end destination-oriented".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{NewPrEngine, PrEngine};
    use crate::engine::DEFAULT_MAX_STEPS;
    use lr_graph::generate;

    #[test]
    fn trace_records_and_validates() {
        let inst = generate::chain_away(6);
        let mut e = PrEngine::new(&inst);
        let trace = Trace::record(&mut e, SchedulePolicy::FirstSingle, DEFAULT_MAX_STEPS);
        assert_eq!(trace.len(), 5);
        assert_eq!(trace.total_reversals(), 5);
        assert_eq!(trace.dummy_steps(), 0);
        trace.validate().expect("trace must replay");
    }

    #[test]
    fn text_rendering_mentions_every_step() {
        let inst = generate::chain_away(4);
        let mut e = PrEngine::new(&inst);
        let trace = Trace::record(&mut e, SchedulePolicy::FirstSingle, DEFAULT_MAX_STEPS);
        let text = trace.render_text();
        assert!(text.contains("step   1"));
        assert!(text.contains("n3 reverses {n2}"));
        assert!(text.lines().count() > trace.len());
    }

    #[test]
    fn dummy_steps_are_flagged_in_text() {
        let inst = lr_graph::parse::parse_instance("dest 3\n1 > 0\n2 > 0\n3 > 0").unwrap();
        let mut e = NewPrEngine::new(&inst);
        let trace = Trace::record(&mut e, SchedulePolicy::FirstSingle, DEFAULT_MAX_STEPS);
        assert!(trace.dummy_steps() > 0);
        assert!(trace.render_text().contains("(dummy)"));
        trace.validate().expect("dummy steps replay as no-ops");
    }

    #[test]
    fn dot_frames_cover_initial_plus_steps() {
        let inst = generate::chain_away(4);
        let mut e = PrEngine::new(&inst);
        let trace = Trace::record(&mut e, SchedulePolicy::FirstSingle, DEFAULT_MAX_STEPS);
        let frames = trace.render_dot_frames();
        assert_eq!(frames.len(), trace.len() + 1);
        assert!(frames[0].contains("digraph initial"));
        assert!(frames[1].contains("digraph step_1"));
    }

    #[test]
    fn empty_trace_on_oriented_instance() {
        let inst = generate::chain_toward(5);
        let mut e = PrEngine::new(&inst);
        let trace = Trace::record(&mut e, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        assert!(trace.is_empty());
        trace.validate().expect("empty trace is valid");
    }

    #[test]
    fn traces_are_reproducible_for_random_policy() {
        let inst = generate::random_connected(10, 8, 60);
        let mut a = PrEngine::new(&inst);
        let ta = Trace::record(&mut a, SchedulePolicy::RandomSingle { seed: 4 }, 100_000);
        let mut b = PrEngine::new(&inst);
        let tb = Trace::record(&mut b, SchedulePolicy::RandomSingle { seed: 4 }, 100_000);
        assert_eq!(ta.frames, tb.frames);
    }
}
