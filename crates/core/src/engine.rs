//! Run loops driving [`ReversalEngine`]s to termination under different
//! scheduling policies, with work accounting.
//!
//! Link-reversal complexity results count **total reversals** (work) and
//! **rounds** (greedy schedule depth). The run loop records both, plus the
//! per-node work vector used by the game-theoretic comparison (E10) and
//! NewPR's dummy-step count (E9).
//!
//! Every loop shares one driver (`drive`), so policy, budget, and
//! stats logic exists once:
//!
//! * [`run_engine`] — the production path: incremental enabled view,
//!   zero-allocation [`ReversalEngine::step_into`] pipeline (one
//!   [`StepScratch`] per run), batched enabled-set merges per greedy
//!   round.
//! * [`run_engine_frontier`] — the same driver configuration, named for
//!   the frontier engines it was built for; kept as the documented
//!   entry point of the flat fast path.
//! * [`run_engine_parallel`] — greedy rounds with the **plan phase
//!   fanned out** across worker threads over snapshot chunks;
//!   bit-identical to the sequential greedy run.
//! * [`run_engine_frontier_sharded`] — greedy rounds with the plan
//!   phase sharded by **contiguous node ranges** (each worker owns a
//!   fixed slice of the id space and plans the enabled nodes that fall
//!   in it); also bit-identical at every thread count.
//! * [`run_engine_scan`] — retained naive-rescan reference (pre-PR-2
//!   behavior).
//! * [`run_engine_alloc`] — retained allocating-step reference
//!   (pre-PR-3 behavior: one owned [`crate::ReversalStep`] per step).
//!
//! The reference loops exist so the fast paths stay falsifiable: the
//! differential suites (`tests/csr_differential.rs`,
//! `tests/frontier_differential.rs`) check all of them produce
//! identical [`RunStats`] on every engine configuration.

use std::collections::BTreeMap;
use std::sync::Arc;

use lr_graph::{CsrGraph, DirectedView, NodeId};
use lr_obs::MetricsShard;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::alg::ReversalEngine;
use crate::{PlanAux, StepOutcome, StepScratch};

/// Scheduling policy for [`run_engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Every current sink steps once per round (the paper's `reverse(S)`
    /// with `S` = all sinks). Since sinks are pairwise non-adjacent this
    /// equals a maximal simultaneous step.
    GreedyRounds,
    /// One uniformly random enabled node steps at a time.
    RandomSingle {
        /// PRNG seed; equal seeds give equal executions.
        seed: u64,
    },
    /// The smallest-id enabled node steps.
    FirstSingle,
    /// The largest-id enabled node steps.
    LastSingle,
}

/// Aggregate statistics of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Algorithm name as reported by the engine.
    pub algorithm: &'static str,
    /// Total node-steps taken (including dummy steps).
    pub steps: usize,
    /// Total edge reversals across all steps.
    pub total_reversals: usize,
    /// NewPR dummy steps (zero for other algorithms).
    pub dummy_steps: usize,
    /// Number of greedy rounds (only meaningful for
    /// [`SchedulePolicy::GreedyRounds`]; equals `steps` otherwise).
    pub rounds: usize,
    /// Per-node step counts indexed by **dense CSR node index** — the
    /// work vector of the game-theoretic analysis (each node's "cost").
    /// Use [`RunStats::work_per_node`] for the node-keyed map view.
    pub work: Vec<usize>,
    /// Sum over scheduling iterations of the enabled-set size at the
    /// start of the iteration (the "frontier occupancy" integral).
    /// Under [`SchedulePolicy::GreedyRounds`] with no budget cut this
    /// equals [`RunStats::steps`] exactly — every snapshotted sink
    /// steps once — which the obs agreement suite asserts per family.
    pub frontier_occupancy: usize,
    /// Whether the run reached quiescence within the step budget.
    pub terminated: bool,
}

impl RunStats {
    /// The maximum work performed by any single node.
    pub fn max_node_work(&self) -> usize {
        self.work.iter().copied().max().unwrap_or(0)
    }

    /// The social cost in the sense of Charron-Bost et al.: the total
    /// number of steps taken by all nodes.
    pub fn social_cost(&self) -> usize {
        self.steps
    }

    /// The work vector as a node-keyed map, derived on demand from the
    /// dense [`RunStats::work`] vector (`csr` must be the engine's CSR
    /// snapshot). Only the node-keyed reports (E10) pay for the map.
    pub fn work_per_node(&self, csr: &CsrGraph) -> BTreeMap<NodeId, usize> {
        csr.nodes()
            .enumerate()
            .map(|(i, u)| (u, self.work[i]))
            .collect()
    }

    /// The run's deterministic metrics, **derived** from the stats the
    /// run loop already books — the obs counters are a projection of
    /// `RunStats`, never a second tally, so per-step work cannot be
    /// double-booked between the work vector and the observability
    /// layer (the agreement suite in `tests/obs_metrics.rs` pins this
    /// for every family × policy, sharded runs included).
    pub fn metrics(&self) -> MetricsShard {
        let mut m = MetricsShard::new();
        m.add("engine.steps", self.steps as u64);
        m.add("engine.reversals", self.total_reversals as u64);
        m.add("engine.dummy_steps", self.dummy_steps as u64);
        m.add("engine.rounds", self.rounds as u64);
        m.add("engine.frontier_occupancy", self.frontier_occupancy as u64);
        m.add("engine.terminated_runs", u64::from(self.terminated));
        m.record_max("engine.max_node_work", self.max_node_work() as u64);
        m
    }
}

/// Default safety budget: generous for Θ(n²) workloads on benchmark sizes.
pub const DEFAULT_MAX_STEPS: usize = 50_000_000;

/// Per-step bookkeeping shared by every scheduling arm of the run loops:
/// step/reversal/dummy counters plus a dense work vector indexed by the
/// CSR node index carried in each [`StepOutcome`] (no per-step map or
/// index lookups).
struct StepBook {
    steps: usize,
    total_reversals: usize,
    dummy_steps: usize,
    work: Vec<usize>,
    frontier_occupancy: usize,
}

impl StepBook {
    fn new(node_count: usize) -> Self {
        StepBook {
            steps: 0,
            total_reversals: 0,
            dummy_steps: 0,
            work: vec![0; node_count],
            frontier_occupancy: 0,
        }
    }

    fn record(&mut self, outcome: &StepOutcome) {
        self.steps += 1;
        self.total_reversals += outcome.reversal_count;
        if outcome.dummy {
            self.dummy_steps += 1;
        }
        self.work[outcome.node_idx] += 1;
    }

    fn into_stats(self, algorithm: &'static str, rounds: usize, terminated: bool) -> RunStats {
        RunStats {
            algorithm,
            steps: self.steps,
            total_reversals: self.total_reversals,
            dummy_steps: self.dummy_steps,
            rounds,
            work: self.work,
            frontier_occupancy: self.frontier_occupancy,
            terminated,
        }
    }
}

/// How the run loop learns which nodes are enabled.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EnabledSource {
    /// Borrow the engine's incrementally maintained view (O(Δ) per step).
    Incremental,
    /// Rescan every node through `is_sink` before each step — the
    /// pre-refactor behavior, retained as a falsification reference.
    Scan,
}

/// How the run loop performs each step.
#[derive(Clone, Copy, PartialEq, Eq)]
enum StepMode {
    /// The zero-allocation pipeline: one reusable [`StepScratch`] for
    /// the whole run, [`ReversalEngine::step_into`] per step.
    ZeroAlloc,
    /// The pre-PR-3 behavior, retained as a measurement reference: every
    /// step goes through the allocating [`ReversalEngine::step`] wrapper
    /// (a fresh buffer and an owned `ReversalStep` per step), the
    /// bookkeeping re-resolves the node index, and greedy rounds edit
    /// the enabled set per step instead of batching the round — the
    /// PR 2 loop, faithfully.
    Alloc,
}

fn scan_enabled(buf: &mut Vec<NodeId>, engine: &dyn ReversalEngine) {
    buf.clear();
    let dest = engine.dest();
    // CSR nodes are in the same ascending order the map frontend
    // produces, so the scan is usable for map-backed and flat engines
    // alike.
    buf.extend(
        engine
            .csr()
            .nodes()
            .filter(|&u| u != dest && engine.is_sink(u)),
    );
}

/// One step under the chosen [`StepMode`], recorded into `book`.
fn take_step(
    engine: &mut dyn ReversalEngine,
    book: &mut StepBook,
    csr: &CsrGraph,
    scratch: &mut StepScratch,
    mode: StepMode,
    u: NodeId,
) {
    match mode {
        StepMode::ZeroAlloc => {
            let outcome = engine.step_into(u, scratch);
            book.record(&outcome);
        }
        StepMode::Alloc => {
            let step = engine.step(u);
            book.record(&StepOutcome {
                node_idx: csr.index_of(step.node).expect("node exists"),
                reversal_count: step.reversal_count(),
                dummy: step.dummy,
            });
        }
    }
}

/// One greedy round through the zero-allocation pipeline with batched
/// enabled-set edits: every sink in `snapshot` steps once (stopping at
/// the budget). Shared by `drive`'s sequential rounds and the
/// small-round fast path of its parallel rounds, so the loops stay in
/// lockstep by construction — the bit-identical guarantee depends on it.
fn greedy_round_zero_alloc(
    engine: &mut dyn ReversalEngine,
    snapshot: &[NodeId],
    book: &mut StepBook,
    scratch: &mut StepScratch,
    max_steps: usize,
) {
    engine.begin_round();
    for &u in snapshot {
        let outcome = engine.step_into(u, scratch);
        book.record(&outcome);
        if book.steps >= max_steps {
            break;
        }
    }
    engine.end_round();
}

/// How a parallel greedy round partitions its plan phase across workers.
/// Both shardings hand each worker a **consecutive subslice** of the
/// ascending round snapshot, so the sequential apply phase always runs
/// in snapshot order — which is what keeps every thread count
/// bit-identical to the sequential schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Sharding {
    /// Equal-length chunks of the round snapshot (PR 3's
    /// [`run_engine_parallel`]): perfect load balance in node count,
    /// but a worker's nodes wander the whole id space.
    SnapshotChunks,
    /// Contiguous node-index ranges (PR 8's
    /// [`run_engine_frontier_sharded`]): worker `k` owns dense indices
    /// `[k·⌈n/threads⌉, (k+1)·⌈n/threads⌉)` and plans the enabled nodes
    /// falling in its range — a stable per-worker sub-worklist whose
    /// CSR reads stay within one slice of the id space.
    NodeRanges,
}

/// Obs handles for one `drive` invocation, resolved once at run start
/// and only when a session is recording. When no session records the
/// `Option` is `None` and each scheduling iteration pays one
/// predictable local branch — the per-step hot loops
/// ([`greedy_round_zero_alloc`], the plan/apply phases) are not
/// instrumented at all.
struct DriveObs {
    run_span: lr_obs::Span,
    round_span: lr_obs::SpanHandle,
    frontier_hist: lr_obs::Histogram,
}

impl DriveObs {
    fn resolve(algorithm: &'static str) -> DriveObs {
        DriveObs {
            run_span: lr_obs::span("engine", format!("engine.run {algorithm}")),
            round_span: lr_obs::span_handle("engine", "engine.round"),
            frontier_hist: lr_obs::histogram("engine.round_frontier"),
        }
    }
}

fn drive(
    engine: &mut dyn ReversalEngine,
    policy: SchedulePolicy,
    max_steps: usize,
    source: EnabledSource,
    mode: StepMode,
    parallel: Option<(ParallelConfig, Sharding)>,
) -> RunStats {
    let algorithm = engine.algorithm_name();
    let mut obs = lr_obs::enabled().then(|| DriveObs::resolve(algorithm));
    let csr = Arc::clone(engine.csr());
    let mut book = StepBook::new(csr.node_count());
    let mut rounds = 0usize;
    let mut terminated = false;
    let mut rng = match policy {
        SchedulePolicy::RandomSingle { seed } => Some(SmallRng::seed_from_u64(seed)),
        _ => None,
    };
    let mut scratch = StepScratch::new();
    // Reusable buffer: the greedy-round snapshot, and under `Scan` the
    // rescanned enabled set. The incremental single-step policies never
    // touch it — they read the engine's view directly.
    let mut snapshot: Vec<NodeId> = Vec::new();
    // Per-worker plan shards, reused across rounds (empty when the run
    // is sequential).
    let mut shards: Vec<PlanShard> = match parallel {
        Some((cfg, _)) => (0..cfg.threads.max(1))
            .map(|_| PlanShard::default())
            .collect(),
        None => Vec::new(),
    };
    loop {
        let done = match source {
            EnabledSource::Incremental => engine.is_terminated(),
            EnabledSource::Scan => {
                scan_enabled(&mut snapshot, engine);
                snapshot.is_empty()
            }
        };
        if done {
            terminated = true;
            break;
        }
        if book.steps >= max_steps {
            break;
        }
        // Frontier occupancy at the start of the iteration: the
        // enabled-set size every scheduling arm is about to draw from.
        // Identical for `Incremental` and `Scan` (same set), for map
        // and flat engines, and for serial and sharded rounds (same
        // snapshot) — so the differential suites keep comparing whole
        // `RunStats` values.
        let frontier_len = match source {
            EnabledSource::Scan => snapshot.len(),
            EnabledSource::Incremental => engine.enabled().len(),
        };
        book.frontier_occupancy += frontier_len;
        let _round_span = obs.as_ref().map(|o| {
            o.frontier_hist.observe(frontier_len as u64);
            let mut span = o.round_span.start();
            span.arg("frontier", frontier_len as u64);
            span
        });
        match policy {
            SchedulePolicy::GreedyRounds => {
                // A maximal simultaneous step: every sink in the snapshot
                // steps once. Sinks are pairwise non-adjacent, so
                // sequential application equals the set action — and no
                // one reads the enabled view until the round ends, so the
                // engine batches its enabled-set edits into one merge.
                if source == EnabledSource::Incremental {
                    snapshot.clear();
                    snapshot.extend_from_slice(engine.enabled());
                }
                rounds += 1;
                match mode {
                    StepMode::ZeroAlloc => match parallel {
                        Some((cfg, sharding)) => planned_parallel_round(
                            engine,
                            &csr,
                            &snapshot,
                            &mut book,
                            &mut scratch,
                            &mut shards,
                            cfg,
                            sharding,
                            max_steps,
                        ),
                        None => greedy_round_zero_alloc(
                            engine,
                            &snapshot,
                            &mut book,
                            &mut scratch,
                            max_steps,
                        ),
                    },
                    // The PR 2 reference mode keeps per-step enabled-set
                    // edits (no round batching existed before PR 3).
                    StepMode::Alloc => {
                        for &u in &snapshot {
                            take_step(engine, &mut book, &csr, &mut scratch, mode, u);
                            if book.steps >= max_steps {
                                break;
                            }
                        }
                    }
                }
            }
            SchedulePolicy::RandomSingle { .. } => {
                let rng = rng.as_mut().expect("rng initialized for RandomSingle");
                let u = *match source {
                    EnabledSource::Incremental => engine.enabled().choose(rng),
                    EnabledSource::Scan => snapshot.choose(rng),
                }
                .expect("enabled non-empty");
                rounds += 1;
                take_step(engine, &mut book, &csr, &mut scratch, mode, u);
            }
            SchedulePolicy::FirstSingle | SchedulePolicy::LastSingle => {
                let view = match source {
                    EnabledSource::Incremental => engine.enabled(),
                    EnabledSource::Scan => &snapshot,
                };
                let u = if policy == SchedulePolicy::FirstSingle {
                    *view.first().expect("non-empty")
                } else {
                    *view.last().expect("non-empty")
                };
                rounds += 1;
                take_step(engine, &mut book, &csr, &mut scratch, mode, u);
            }
        }
    }
    let stats = book.into_stats(algorithm, rounds, terminated);
    if let Some(obs) = obs.as_mut() {
        obs.run_span.arg("steps", stats.steps as u64);
        obs.run_span.arg("rounds", stats.rounds as u64);
        obs.run_span.arg("reversals", stats.total_reversals as u64);
        // Publish the derived (never re-tallied) metrics shard into the
        // global recorder so the sinks show them next to the timing.
        stats.metrics().publish();
    }
    stats
}

/// Drives `engine` until termination (no enabled node) or until
/// `max_steps` node-steps have been taken, consuming the engine's
/// incrementally maintained enabled view through the zero-allocation
/// step pipeline: one [`StepScratch`] for the whole run, no per-step
/// heap traffic after warm-up.
///
/// The engine is **not** reset first; callers compose runs on partially
/// advanced engines when needed (the routing simulator does).
pub fn run_engine(
    engine: &mut dyn ReversalEngine,
    policy: SchedulePolicy,
    max_steps: usize,
) -> RunStats {
    drive(
        engine,
        policy,
        max_steps,
        EnabledSource::Incremental,
        StepMode::ZeroAlloc,
        None,
    )
}

/// The retained **naive-scan reference loop**: identical scheduling and
/// bookkeeping to [`run_engine`], but the enabled set is recomputed
/// before every step by scanning all nodes through
/// [`ReversalEngine::is_sink`] — the pre-PR-2 O(n·Δ)-per-step behavior.
///
/// Exists so the incremental machinery stays falsifiable: the
/// differential suite (`tests/csr_differential.rs`) and the
/// representation bench compare the two loops step-for-step.
pub fn run_engine_scan(
    engine: &mut dyn ReversalEngine,
    policy: SchedulePolicy,
    max_steps: usize,
) -> RunStats {
    drive(
        engine,
        policy,
        max_steps,
        EnabledSource::Scan,
        StepMode::ZeroAlloc,
        None,
    )
}

/// The retained **PR 2 reference loop**: identical scheduling to
/// [`run_engine`], but every step goes through the allocating
/// [`ReversalEngine::step`] compatibility wrapper — a fresh buffer and
/// an owned [`crate::ReversalStep`] per step, ~4.2 M allocations for
/// one n = 4096 alternating-chain run — and greedy rounds pay the
/// per-step sorted enabled-vector edits instead of the PR 3 batched
/// round merge.
///
/// Exists as the measurement baseline for the zero-allocation pipeline
/// (`exp_throughput`, `bench_throughput`) and as a differential
/// reference for `step` vs `step_into` equivalence.
pub fn run_engine_alloc(
    engine: &mut dyn ReversalEngine,
    policy: SchedulePolicy,
    max_steps: usize,
) -> RunStats {
    drive(
        engine,
        policy,
        max_steps,
        EnabledSource::Incremental,
        StepMode::Alloc,
        None,
    )
}

/// The **frontier-driven** run loop: drives `engine` keeping only the
/// enabled frontier (and, inside the engine, its one-hop delta) hot.
///
/// Each greedy round snapshots the enabled frontier into a reusable
/// buffer, steps every frontier node through the zero-allocation
/// pipeline, and closes the round on [`crate::EnabledTracker`]'s batch
/// merge — so per-round work is O(frontier + reversed edges), never
/// O(n). Single-step policies treat the policy's chosen node as a
/// one-element frontier. The loop never touches the map-backed instance,
/// which is what lets a flat engine like
/// [`crate::alg::FrontierPrEngine`] run million-node instances without
/// ever materializing one.
///
/// Scheduling, bookkeeping, and round counting are [`run_engine`]'s —
/// since PR 8 the two names share the driver **by construction** (one
/// `drive` configuration) rather than by duplicated loops held in
/// lockstep; the differential suite (`tests/frontier_differential.rs`)
/// still pins them to identical [`RunStats`] and final orientations on
/// every tested engine, size, and policy.
pub fn run_engine_frontier(
    engine: &mut dyn ReversalEngine,
    policy: SchedulePolicy,
    max_steps: usize,
) -> RunStats {
    drive(
        engine,
        policy,
        max_steps,
        EnabledSource::Incremental,
        StepMode::ZeroAlloc,
        None,
    )
}

/// Tuning for [`run_engine_parallel_with`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParallelConfig {
    /// Worker-thread count for the plan phase (clamped to ≥ 1; 1 means
    /// fully sequential).
    pub threads: usize,
    /// Rounds with fewer enabled nodes than this run sequentially —
    /// spawning workers for a handful of sinks costs more than it saves.
    pub min_parallel_round: usize,
}

impl ParallelConfig {
    /// `threads` workers with the default round-size cutoff
    /// (`64 × threads`).
    pub fn new(threads: usize) -> Self {
        ParallelConfig {
            threads: threads.max(1),
            min_parallel_round: 64 * threads.max(1),
        }
    }
}

/// One planned step, pointing into a shard's concatenated target buffer.
struct PlanRec {
    outcome: StepOutcome,
    start: usize,
    aux: PlanAux,
}

/// Per-worker plan output, reused across rounds.
#[derive(Default)]
struct PlanShard {
    recs: Vec<PlanRec>,
    targets: Vec<NodeId>,
    scratch: StepScratch,
}

/// Plans one shard of a round against the shared pre-round state.
fn plan_shard(planner: &dyn ReversalEngine, shard: &mut PlanShard, nodes: &[NodeId]) {
    for &u in nodes {
        let outcome = planner.plan_step(u, &mut shard.scratch);
        shard.recs.push(PlanRec {
            outcome,
            start: shard.targets.len(),
            aux: shard.scratch.aux(),
        });
        shard.targets.extend_from_slice(shard.scratch.reversed());
    }
}

/// One greedy round with the plan phase fanned out across crossbeam-
/// scoped workers and a sequential apply — `drive`'s parallel round.
///
/// Every worker plans its sub-worklist against the shared **frozen
/// pre-round state** (read-only borrow; a round's sinks are pairwise
/// non-adjacent, so pre-round plans equal mid-round sequential plans).
/// The apply phase then replays all planned steps on the caller thread
/// in snapshot order — both shardings hand workers consecutive
/// subslices of the ascending snapshot — reconciling every boundary
/// half-edge and tracker delta in the deterministic sequential order.
/// Rounds smaller than `cfg.min_parallel_round` (and everything when
/// `cfg.threads == 1`) take the sequential fast path, which is exactly
/// one [`run_engine`] round.
#[allow(clippy::too_many_arguments)]
fn planned_parallel_round(
    engine: &mut dyn ReversalEngine,
    csr: &CsrGraph,
    snapshot: &[NodeId],
    book: &mut StepBook,
    scratch: &mut StepScratch,
    shards: &mut [PlanShard],
    cfg: ParallelConfig,
    sharding: Sharding,
    max_steps: usize,
) {
    let threads = cfg.threads.max(1);
    if threads == 1 || snapshot.len() < cfg.min_parallel_round {
        // Sequential fast path — exactly one `run_engine` round.
        greedy_round_zero_alloc(engine, snapshot, book, scratch, max_steps);
        return;
    }
    // Plan phase: workers read the shared pre-round state.
    for shard in shards.iter_mut() {
        shard.recs.clear();
        shard.targets.clear();
    }
    let mut slices: Vec<&[NodeId]> = Vec::with_capacity(threads);
    match sharding {
        Sharding::SnapshotChunks => {
            let chunk = snapshot.len().div_ceil(threads);
            slices.extend(snapshot.chunks(chunk));
        }
        Sharding::NodeRanges => {
            // The snapshot is ascending by id, and dense CSR indices are
            // ascending by id too, so each worker's sub-worklist is the
            // consecutive run of snapshot entries inside its index range.
            let chunk = csr.node_count().div_ceil(threads);
            let mut lo = 0usize;
            for k in 0..threads {
                let hi = if k + 1 == threads {
                    snapshot.len()
                } else {
                    let bound = (k + 1) * chunk;
                    lo + snapshot[lo..]
                        .partition_point(|&u| csr.index_of(u).expect("enabled node exists") < bound)
                };
                if hi > lo {
                    slices.push(&snapshot[lo..hi]);
                }
                lo = hi;
            }
        }
    }
    let planner: &dyn ReversalEngine = engine;
    crossbeam::thread::scope(|s| {
        let mut work = shards.iter_mut().zip(slices.iter().copied());
        // The caller thread plans the first shard itself; only the
        // remaining shards pay for a spawn.
        let first = work.next();
        for (shard, nodes) in work {
            s.spawn(move |_| plan_shard(planner, shard, nodes));
        }
        if let Some((shard, nodes)) = first {
            plan_shard(planner, shard, nodes);
        }
    })
    .expect("plan worker panicked");
    // Apply phase: shards cover the snapshot in order, so the tracker's
    // out-count deltas merge deterministically.
    engine.begin_round();
    'apply: for shard in shards.iter() {
        for rec in &shard.recs {
            let u = csr.node(rec.outcome.node_idx);
            let targets = &shard.targets[rec.start..rec.start + rec.outcome.reversal_count];
            engine.apply_planned(u, targets, rec.aux);
            book.record(&rec.outcome);
            if book.steps >= max_steps {
                break 'apply;
            }
        }
    }
    engine.end_round();
}

/// [`run_engine`] for [`SchedulePolicy::GreedyRounds`] with the **plan
/// phase of each round fanned out across worker threads**, default
/// tuning. See [`run_engine_parallel_with`].
pub fn run_engine_parallel(
    engine: &mut dyn ReversalEngine,
    threads: usize,
    max_steps: usize,
) -> RunStats {
    run_engine_parallel_with(engine, ParallelConfig::new(threads), max_steps)
}

/// Greedy-rounds execution with parallel planning, explicit tuning.
///
/// Each round snapshots the enabled slice, partitions it across
/// `cfg.threads` crossbeam-scoped workers that **plan** their shard's
/// steps against the shared pre-round state (read-only, one scratch per
/// shard), then applies every planned step on the caller thread in
/// snapshot order. Because a round's sinks are pairwise non-adjacent,
/// plans computed against the pre-round state equal the plans a
/// sequential schedule would compute mid-round, and the sequential apply
/// merges the out-count deltas deterministically — so the resulting
/// [`RunStats`], final state, and enabled sets are **bit-identical** to
/// [`run_engine`] under [`SchedulePolicy::GreedyRounds`].
///
/// Rounds smaller than `cfg.min_parallel_round` (and everything when
/// `cfg.threads == 1`) take the sequential fast path.
pub fn run_engine_parallel_with(
    engine: &mut dyn ReversalEngine,
    cfg: ParallelConfig,
    max_steps: usize,
) -> RunStats {
    drive(
        engine,
        SchedulePolicy::GreedyRounds,
        max_steps,
        EnabledSource::Incremental,
        StepMode::ZeroAlloc,
        Some((cfg, Sharding::SnapshotChunks)),
    )
}

/// [`run_engine_frontier`] for [`SchedulePolicy::GreedyRounds`] with the
/// plan phase **sharded by contiguous node ranges** across worker
/// threads, default tuning. See [`run_engine_frontier_sharded_with`].
pub fn run_engine_frontier_sharded(
    engine: &mut dyn ReversalEngine,
    threads: usize,
    max_steps: usize,
) -> RunStats {
    run_engine_frontier_sharded_with(engine, ParallelConfig::new(threads), max_steps)
}

/// Greedy-rounds execution with **node-range-sharded** parallel
/// planning, explicit tuning.
///
/// The id space is partitioned once into `cfg.threads` contiguous dense-
/// index ranges; each round, every crossbeam-scoped worker receives as
/// its sub-worklist the run of enabled nodes falling in its range (a
/// consecutive subslice of the ascending round snapshot) and plans those
/// steps against the frozen pre-round state. The caller thread then
/// applies all planned steps sequentially in snapshot order, reconciling
/// boundary half-edges — a planned reversal whose twin slot lives in
/// another worker's range — and the enabled-tracker deltas in the same
/// deterministic order the sequential schedule would have used. The
/// freeze/shard/fold discipline is PRs 3/5/6's; the resulting
/// [`RunStats`], final state, and enabled sets are **bit-identical** to
/// [`run_engine`] / [`run_engine_frontier`] under
/// [`SchedulePolicy::GreedyRounds`] at every thread count
/// (`tests/frontier_differential.rs`).
///
/// Compared to [`run_engine_parallel_with`]'s snapshot chunking, range
/// sharding gives each worker a stable slice of the id space across
/// rounds — its CSR and direction-bit reads for planning stay within
/// that slice, which is the layout a future multi-process split of the
/// arrays would inherit.
pub fn run_engine_frontier_sharded_with(
    engine: &mut dyn ReversalEngine,
    cfg: ParallelConfig,
    max_steps: usize,
) -> RunStats {
    drive(
        engine,
        SchedulePolicy::GreedyRounds,
        max_steps,
        EnabledSource::Incremental,
        StepMode::ZeroAlloc,
        Some((cfg, Sharding::NodeRanges)),
    )
}

/// Runs and asserts the link-reversal postcondition: the final orientation
/// is acyclic and destination-oriented.
///
/// # Panics
///
/// Panics if the run does not terminate within `max_steps` or the
/// postcondition fails — used by tests and experiments that require
/// completed runs.
pub fn run_to_destination_oriented(
    engine: &mut dyn ReversalEngine,
    policy: SchedulePolicy,
    max_steps: usize,
) -> RunStats {
    let stats = run_engine(engine, policy, max_steps);
    assert!(
        stats.terminated,
        "{} did not terminate within {max_steps} steps",
        stats.algorithm
    );
    let o = engine.orientation();
    if let Some(inst) = engine.instance() {
        let view = DirectedView::new(&inst.graph, &o);
        assert!(view.is_acyclic(), "{} broke acyclicity", stats.algorithm);
        assert!(
            view.is_destination_oriented(inst.dest),
            "{} terminated non-destination-oriented",
            stats.algorithm
        );
    } else {
        // Flat CSR-native engine: check the postcondition over the CSR
        // snapshot. For a connected graph, destination-oriented is
        // equivalent to acyclic with the destination as the unique sink.
        let csr = engine.csr();
        let dest = engine.dest();
        let mut outdeg = vec![0u32; csr.node_count()];
        for (src, deg) in outdeg.iter_mut().enumerate() {
            let u = csr.node(src);
            for slot in csr.slots(src) {
                let v = csr.node(csr.target(slot));
                if o.dir(u, v).expect("orientation covers every edge") == lr_graph::EdgeDir::Out {
                    *deg += 1;
                }
            }
        }
        // Kahn's algorithm on the reverse graph: repeatedly peel sinks.
        let mut queue: Vec<usize> = (0..csr.node_count()).filter(|&i| outdeg[i] == 0).collect();
        for &i in &queue {
            assert!(
                csr.node(i) == dest || csr.degree(i) == 0,
                "{} terminated non-destination-oriented: {} is a sink",
                stats.algorithm,
                csr.node(i)
            );
        }
        let mut peeled = 0usize;
        while let Some(i) = queue.pop() {
            peeled += 1;
            let u = csr.node(i);
            for slot in csr.slots(i) {
                let src = csr.target(slot);
                let v = csr.node(src);
                if o.dir(v, u).expect("orientation covers every edge") == lr_graph::EdgeDir::Out {
                    outdeg[src] -= 1;
                    if outdeg[src] == 0 {
                        queue.push(src);
                    }
                }
            }
        }
        assert_eq!(
            peeled,
            csr.node_count(),
            "{} broke acyclicity",
            stats.algorithm
        );
    }
    stats
}

/// A random schedule prefix: advances the engine `steps` single random
/// steps (or fewer if it terminates first). Returns the number of steps
/// actually taken. Used to generate "mid-execution" states for invariant
/// spot checks and failure-injection tests.
pub fn advance_randomly(engine: &mut dyn ReversalEngine, steps: usize, seed: u64) -> usize {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut scratch = StepScratch::new();
    for taken in 0..steps {
        let enabled = engine.enabled();
        if enabled.is_empty() {
            return taken;
        }
        let u = enabled[rng.gen_range(0..enabled.len())];
        engine.step_into(u, &mut scratch);
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{AlgorithmKind, NewPrEngine, PrEngine};
    use lr_graph::generate;

    #[test]
    fn all_algorithms_terminate_on_chain_under_all_policies() {
        let inst = generate::chain_away(9);
        let policies = [
            SchedulePolicy::GreedyRounds,
            SchedulePolicy::RandomSingle { seed: 3 },
            SchedulePolicy::FirstSingle,
            SchedulePolicy::LastSingle,
        ];
        for kind in AlgorithmKind::ALL {
            for policy in policies {
                let mut engine = kind.engine(&inst);
                let stats = run_to_destination_oriented(engine.as_mut(), policy, DEFAULT_MAX_STEPS);
                assert!(stats.terminated);
                assert!(stats.steps > 0);
                assert_eq!(
                    stats.work.iter().sum::<usize>(),
                    stats.steps,
                    "work vector must sum to steps"
                );
            }
        }
    }

    #[test]
    fn greedy_rounds_counts_rounds_not_steps() {
        let inst = generate::star_away(6); // 6 sinks step in round 1
        let mut e = PrEngine::new(&inst);
        let stats = run_engine(&mut e, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        assert!(stats.terminated);
        assert!(stats.rounds < stats.steps || stats.steps <= 1);
    }

    #[test]
    fn random_runs_reproducible_by_seed() {
        let inst = generate::random_connected(14, 10, 5);
        let mut a = PrEngine::new(&inst);
        let sa = run_engine(&mut a, SchedulePolicy::RandomSingle { seed: 9 }, 100_000);
        let mut b = PrEngine::new(&inst);
        let sb = run_engine(&mut b, SchedulePolicy::RandomSingle { seed: 9 }, 100_000);
        assert_eq!(sa, sb);
        assert_eq!(a.orientation(), b.orientation());
    }

    #[test]
    fn newpr_counts_dummy_steps() {
        // Star centered on an initial sink with the destination at a leaf
        // forces dummy steps for the other leaves (initial sources).
        let inst = lr_graph::parse::parse_instance("dest 3\n1 > 0\n2 > 0\n3 > 0").unwrap();
        let mut e = NewPrEngine::new(&inst);
        let stats =
            run_to_destination_oriented(&mut e, SchedulePolicy::FirstSingle, DEFAULT_MAX_STEPS);
        assert!(stats.dummy_steps > 0, "expected dummy steps, got none");
        assert!(stats.steps > stats.dummy_steps);
    }

    #[test]
    fn step_budget_is_respected() {
        let inst = generate::chain_away(64);
        let mut e = crate::alg::FullReversalEngine::new(&inst);
        let stats = run_engine(&mut e, SchedulePolicy::FirstSingle, 10);
        assert!(!stats.terminated);
        assert_eq!(stats.steps, 10);
    }

    #[test]
    fn advance_randomly_stops_at_termination() {
        let inst = generate::chain_away(4);
        let mut e = PrEngine::new(&inst);
        let taken = advance_randomly(&mut e, 10_000, 1);
        assert!(taken < 10_000);
        assert!(e.is_terminated());
    }

    #[test]
    fn social_cost_and_max_work_accessors() {
        let inst = generate::chain_away(6);
        let mut e = PrEngine::new(&inst);
        let stats = run_engine(&mut e, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        assert_eq!(stats.social_cost(), stats.steps);
        assert!(stats.max_node_work() >= 1);
    }

    #[test]
    fn work_per_node_map_mirrors_dense_vector() {
        let inst = generate::alternating_chain(9);
        let mut e = PrEngine::new(&inst);
        let stats = run_engine(&mut e, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        let map = stats.work_per_node(e.csr());
        assert_eq!(map.len(), stats.work.len());
        for (i, u) in e.csr().nodes().enumerate() {
            assert_eq!(map[&u], stats.work[i]);
        }
    }

    #[test]
    fn alloc_reference_loop_matches_zero_alloc_loop() {
        let inst = generate::alternating_chain(17);
        for policy in [
            SchedulePolicy::GreedyRounds,
            SchedulePolicy::RandomSingle { seed: 11 },
            SchedulePolicy::FirstSingle,
            SchedulePolicy::LastSingle,
        ] {
            let mut fast = PrEngine::new(&inst);
            let fast_stats = run_engine(&mut fast, policy, DEFAULT_MAX_STEPS);
            let mut slow = PrEngine::new(&inst);
            let slow_stats = run_engine_alloc(&mut slow, policy, DEFAULT_MAX_STEPS);
            assert_eq!(fast_stats, slow_stats);
            assert_eq!(fast.orientation(), slow.orientation());
        }
    }

    #[test]
    fn parallel_greedy_is_bit_identical_to_sequential() {
        let inst = generate::alternating_chain(65);
        for kind in AlgorithmKind::ALL {
            let mut seq = kind.engine(&inst);
            let seq_stats = run_engine(
                seq.as_mut(),
                SchedulePolicy::GreedyRounds,
                DEFAULT_MAX_STEPS,
            );
            for threads in [1usize, 2, 4, 8] {
                let mut par = kind.engine(&inst);
                // min_parallel_round: 0 forces the parallel path even on
                // this small instance.
                let cfg = ParallelConfig {
                    threads,
                    min_parallel_round: 0,
                };
                let par_stats = run_engine_parallel_with(par.as_mut(), cfg, DEFAULT_MAX_STEPS);
                assert_eq!(par_stats, seq_stats, "{} × {threads} threads", kind.name());
                assert_eq!(par.orientation(), seq.orientation());
                assert_eq!(par.enabled(), seq.enabled());
            }
        }
    }

    #[test]
    fn parallel_respects_step_budget() {
        let inst = generate::alternating_chain(65);
        let mut seq = PrEngine::new(&inst);
        let seq_stats = run_engine(&mut seq, SchedulePolicy::GreedyRounds, 100);
        let mut par = PrEngine::new(&inst);
        let cfg = ParallelConfig {
            threads: 4,
            min_parallel_round: 0,
        };
        let par_stats = run_engine_parallel_with(&mut par, cfg, 100);
        assert!(!par_stats.terminated);
        assert_eq!(par_stats, seq_stats);
    }

    #[test]
    fn sharded_greedy_is_bit_identical_to_sequential_for_every_family() {
        use crate::alg::FrontierFamily;
        let inst = generate::alternating_chain(65);
        let flat = lr_graph::CsrInstance::from_instance(&inst);
        for family in FrontierFamily::ALL {
            let mut seq = family.engine(flat.clone());
            let seq_stats = run_engine_frontier(
                seq.as_mut(),
                SchedulePolicy::GreedyRounds,
                DEFAULT_MAX_STEPS,
            );
            for threads in [1usize, 2, 4, 8] {
                let mut par = family.engine(flat.clone());
                // min_parallel_round: 0 forces the sharded path even on
                // this small instance.
                let cfg = ParallelConfig {
                    threads,
                    min_parallel_round: 0,
                };
                let par_stats =
                    run_engine_frontier_sharded_with(par.as_mut(), cfg, DEFAULT_MAX_STEPS);
                assert_eq!(
                    par_stats,
                    seq_stats,
                    "{} × {threads} threads",
                    family.name()
                );
                assert_eq!(par.orientation(), seq.orientation());
                assert_eq!(par.enabled(), seq.enabled());
            }
        }
    }

    #[test]
    fn sharded_respects_step_budget() {
        let flat = lr_graph::stream::alternating_chain(65);
        let mut seq = crate::alg::FrontierPrEngine::new(flat.clone());
        let seq_stats = run_engine_frontier(&mut seq, SchedulePolicy::GreedyRounds, 100);
        let mut par = crate::alg::FrontierPrEngine::new(flat);
        let cfg = ParallelConfig {
            threads: 4,
            min_parallel_round: 0,
        };
        let par_stats = run_engine_frontier_sharded_with(&mut par, cfg, 100);
        assert!(!par_stats.terminated);
        assert_eq!(par_stats, seq_stats);
    }

    #[test]
    fn sharded_handles_more_threads_than_nodes() {
        let flat = lr_graph::stream::chain_away(4);
        let mut e = crate::alg::FrontierPrEngine::new(flat);
        let cfg = ParallelConfig {
            threads: 16,
            min_parallel_round: 0,
        };
        let stats = run_engine_frontier_sharded_with(&mut e, cfg, DEFAULT_MAX_STEPS);
        assert!(stats.terminated);
    }
}
