//! Run loops driving [`ReversalEngine`]s to termination under different
//! scheduling policies, with work accounting.
//!
//! Link-reversal complexity results count **total reversals** (work) and
//! **rounds** (greedy schedule depth). The run loop records both, plus the
//! per-node work vector used by the game-theoretic comparison (E10) and
//! NewPR's dummy-step count (E9).

use std::collections::BTreeMap;

use lr_graph::{CsrGraph, DirectedView, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::alg::ReversalEngine;
use crate::ReversalStep;

/// Scheduling policy for [`run_engine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SchedulePolicy {
    /// Every current sink steps once per round (the paper's `reverse(S)`
    /// with `S` = all sinks). Since sinks are pairwise non-adjacent this
    /// equals a maximal simultaneous step.
    GreedyRounds,
    /// One uniformly random enabled node steps at a time.
    RandomSingle {
        /// PRNG seed; equal seeds give equal executions.
        seed: u64,
    },
    /// The smallest-id enabled node steps.
    FirstSingle,
    /// The largest-id enabled node steps.
    LastSingle,
}

/// Aggregate statistics of one run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunStats {
    /// Algorithm name as reported by the engine.
    pub algorithm: &'static str,
    /// Total node-steps taken (including dummy steps).
    pub steps: usize,
    /// Total edge reversals across all steps.
    pub total_reversals: usize,
    /// NewPR dummy steps (zero for other algorithms).
    pub dummy_steps: usize,
    /// Number of greedy rounds (only meaningful for
    /// [`SchedulePolicy::GreedyRounds`]; equals `steps` otherwise).
    pub rounds: usize,
    /// Per-node step counts — the work vector of the game-theoretic
    /// analysis (each node's "cost").
    pub work_per_node: BTreeMap<NodeId, usize>,
    /// Whether the run reached quiescence within the step budget.
    pub terminated: bool,
}

impl RunStats {
    /// The maximum work performed by any single node.
    pub fn max_node_work(&self) -> usize {
        self.work_per_node.values().copied().max().unwrap_or(0)
    }

    /// The social cost in the sense of Charron-Bost et al.: the total
    /// number of steps taken by all nodes.
    pub fn social_cost(&self) -> usize {
        self.steps
    }
}

/// Default safety budget: generous for Θ(n²) workloads on benchmark sizes.
pub const DEFAULT_MAX_STEPS: usize = 50_000_000;

/// Per-step bookkeeping shared by every scheduling arm of the run loops:
/// step/reversal/dummy counters plus a dense work vector indexed by CSR
/// node index (no per-step map lookups).
struct StepBook {
    steps: usize,
    total_reversals: usize,
    dummy_steps: usize,
    work: Vec<usize>,
}

impl StepBook {
    fn new(node_count: usize) -> Self {
        StepBook {
            steps: 0,
            total_reversals: 0,
            dummy_steps: 0,
            work: vec![0; node_count],
        }
    }

    fn record(&mut self, csr: &CsrGraph, step: &ReversalStep) {
        self.steps += 1;
        self.total_reversals += step.reversal_count();
        if step.dummy {
            self.dummy_steps += 1;
        }
        self.work[csr.index_of(step.node).expect("node exists")] += 1;
    }
}

/// How the run loop learns which nodes are enabled.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EnabledSource {
    /// Borrow the engine's incrementally maintained view (O(Δ) per step).
    Incremental,
    /// Rescan every node through `is_sink` before each step — the
    /// pre-refactor behavior, retained as a falsification reference.
    Scan,
}

fn scan_enabled(buf: &mut Vec<NodeId>, engine: &dyn ReversalEngine) {
    buf.clear();
    let inst = engine.instance();
    buf.extend(
        inst.graph
            .nodes()
            .filter(|&u| u != inst.dest && engine.is_sink(u)),
    );
}

fn drive(
    engine: &mut dyn ReversalEngine,
    policy: SchedulePolicy,
    max_steps: usize,
    source: EnabledSource,
) -> RunStats {
    let algorithm = engine.algorithm_name();
    let csr = std::sync::Arc::clone(engine.csr());
    let mut book = StepBook::new(csr.node_count());
    let mut rounds = 0usize;
    let mut terminated = false;
    let mut rng = match policy {
        SchedulePolicy::RandomSingle { seed } => Some(SmallRng::seed_from_u64(seed)),
        _ => None,
    };
    // Reusable buffer: the greedy-round snapshot, and under `Scan` the
    // rescanned enabled set. The incremental single-step policies never
    // touch it — they read the engine's view directly.
    let mut snapshot: Vec<NodeId> = Vec::new();
    loop {
        let done = match source {
            EnabledSource::Incremental => engine.is_terminated(),
            EnabledSource::Scan => {
                scan_enabled(&mut snapshot, engine);
                snapshot.is_empty()
            }
        };
        if done {
            terminated = true;
            break;
        }
        if book.steps >= max_steps {
            break;
        }
        match policy {
            SchedulePolicy::GreedyRounds => {
                // A maximal simultaneous step: every sink in the snapshot
                // steps once. Sinks are pairwise non-adjacent, so
                // sequential application equals the set action.
                if source == EnabledSource::Incremental {
                    snapshot.clear();
                    snapshot.extend_from_slice(engine.enabled());
                }
                rounds += 1;
                for &u in &snapshot {
                    let step = engine.step(u);
                    book.record(&csr, &step);
                    if book.steps >= max_steps {
                        break;
                    }
                }
            }
            SchedulePolicy::RandomSingle { .. } => {
                let rng = rng.as_mut().expect("rng initialized for RandomSingle");
                let u = *match source {
                    EnabledSource::Incremental => engine.enabled().choose(rng),
                    EnabledSource::Scan => snapshot.choose(rng),
                }
                .expect("enabled non-empty");
                let step = engine.step(u);
                rounds += 1;
                book.record(&csr, &step);
            }
            SchedulePolicy::FirstSingle | SchedulePolicy::LastSingle => {
                let view = match source {
                    EnabledSource::Incremental => engine.enabled(),
                    EnabledSource::Scan => &snapshot,
                };
                let u = if policy == SchedulePolicy::FirstSingle {
                    *view.first().expect("non-empty")
                } else {
                    *view.last().expect("non-empty")
                };
                let step = engine.step(u);
                rounds += 1;
                book.record(&csr, &step);
            }
        }
    }
    RunStats {
        algorithm,
        steps: book.steps,
        total_reversals: book.total_reversals,
        dummy_steps: book.dummy_steps,
        rounds,
        work_per_node: csr
            .nodes()
            .enumerate()
            .map(|(i, u)| (u, book.work[i]))
            .collect(),
        terminated,
    }
}

/// Drives `engine` until termination (no enabled node) or until
/// `max_steps` node-steps have been taken, consuming the engine's
/// incrementally maintained enabled view (O(Δ + s) per step,
/// allocation-free outside greedy-round snapshots).
///
/// The engine is **not** reset first; callers compose runs on partially
/// advanced engines when needed (the routing simulator does).
pub fn run_engine(
    engine: &mut dyn ReversalEngine,
    policy: SchedulePolicy,
    max_steps: usize,
) -> RunStats {
    drive(engine, policy, max_steps, EnabledSource::Incremental)
}

/// The retained **naive-scan reference loop**: identical scheduling and
/// bookkeeping to [`run_engine`], but the enabled set is recomputed
/// before every step by scanning all nodes through
/// [`ReversalEngine::is_sink`] — the pre-refactor O(n·Δ)-per-step
/// behavior.
///
/// Exists so the incremental machinery stays falsifiable: the
/// differential suite (`tests/csr_differential.rs`) and the
/// representation bench compare the two loops step-for-step.
pub fn run_engine_scan(
    engine: &mut dyn ReversalEngine,
    policy: SchedulePolicy,
    max_steps: usize,
) -> RunStats {
    drive(engine, policy, max_steps, EnabledSource::Scan)
}

/// Runs and asserts the link-reversal postcondition: the final orientation
/// is acyclic and destination-oriented.
///
/// # Panics
///
/// Panics if the run does not terminate within `max_steps` or the
/// postcondition fails — used by tests and experiments that require
/// completed runs.
pub fn run_to_destination_oriented(
    engine: &mut dyn ReversalEngine,
    policy: SchedulePolicy,
    max_steps: usize,
) -> RunStats {
    let stats = run_engine(engine, policy, max_steps);
    assert!(
        stats.terminated,
        "{} did not terminate within {max_steps} steps",
        stats.algorithm
    );
    let inst = engine.instance();
    let o = engine.orientation();
    let view = DirectedView::new(&inst.graph, &o);
    assert!(view.is_acyclic(), "{} broke acyclicity", stats.algorithm);
    assert!(
        view.is_destination_oriented(inst.dest),
        "{} terminated non-destination-oriented",
        stats.algorithm
    );
    stats
}

/// A random schedule prefix: advances the engine `steps` single random
/// steps (or fewer if it terminates first). Returns the number of steps
/// actually taken. Used to generate "mid-execution" states for invariant
/// spot checks and failure-injection tests.
pub fn advance_randomly(engine: &mut dyn ReversalEngine, steps: usize, seed: u64) -> usize {
    let mut rng = SmallRng::seed_from_u64(seed);
    for taken in 0..steps {
        let enabled = engine.enabled();
        if enabled.is_empty() {
            return taken;
        }
        let u = enabled[rng.gen_range(0..enabled.len())];
        engine.step(u);
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alg::{AlgorithmKind, NewPrEngine, PrEngine};
    use lr_graph::generate;

    #[test]
    fn all_algorithms_terminate_on_chain_under_all_policies() {
        let inst = generate::chain_away(9);
        let policies = [
            SchedulePolicy::GreedyRounds,
            SchedulePolicy::RandomSingle { seed: 3 },
            SchedulePolicy::FirstSingle,
            SchedulePolicy::LastSingle,
        ];
        for kind in AlgorithmKind::ALL {
            for policy in policies {
                let mut engine = kind.engine(&inst);
                let stats = run_to_destination_oriented(engine.as_mut(), policy, DEFAULT_MAX_STEPS);
                assert!(stats.terminated);
                assert!(stats.steps > 0);
                assert_eq!(
                    stats.work_per_node.values().sum::<usize>(),
                    stats.steps,
                    "work vector must sum to steps"
                );
            }
        }
    }

    #[test]
    fn greedy_rounds_counts_rounds_not_steps() {
        let inst = generate::star_away(6); // 6 sinks step in round 1
        let mut e = PrEngine::new(&inst);
        let stats = run_engine(&mut e, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        assert!(stats.terminated);
        assert!(stats.rounds < stats.steps || stats.steps <= 1);
    }

    #[test]
    fn random_runs_reproducible_by_seed() {
        let inst = generate::random_connected(14, 10, 5);
        let mut a = PrEngine::new(&inst);
        let sa = run_engine(&mut a, SchedulePolicy::RandomSingle { seed: 9 }, 100_000);
        let mut b = PrEngine::new(&inst);
        let sb = run_engine(&mut b, SchedulePolicy::RandomSingle { seed: 9 }, 100_000);
        assert_eq!(sa, sb);
        assert_eq!(a.orientation(), b.orientation());
    }

    #[test]
    fn newpr_counts_dummy_steps() {
        // Star centered on an initial sink with the destination at a leaf
        // forces dummy steps for the other leaves (initial sources).
        let inst = lr_graph::parse::parse_instance("dest 3\n1 > 0\n2 > 0\n3 > 0").unwrap();
        let mut e = NewPrEngine::new(&inst);
        let stats =
            run_to_destination_oriented(&mut e, SchedulePolicy::FirstSingle, DEFAULT_MAX_STEPS);
        assert!(stats.dummy_steps > 0, "expected dummy steps, got none");
        assert!(stats.steps > stats.dummy_steps);
    }

    #[test]
    fn step_budget_is_respected() {
        let inst = generate::chain_away(64);
        let mut e = crate::alg::FullReversalEngine::new(&inst);
        let stats = run_engine(&mut e, SchedulePolicy::FirstSingle, 10);
        assert!(!stats.terminated);
        assert_eq!(stats.steps, 10);
    }

    #[test]
    fn advance_randomly_stops_at_termination() {
        let inst = generate::chain_away(4);
        let mut e = PrEngine::new(&inst);
        let taken = advance_randomly(&mut e, 10_000, 1);
        assert!(taken < 10_000);
        assert!(e.is_terminated());
    }

    #[test]
    fn social_cost_and_max_work_accessors() {
        let inst = generate::chain_away(6);
        let mut e = PrEngine::new(&inst);
        let stats = run_engine(&mut e, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
        assert_eq!(stats.social_cost(), stats.steps);
        assert!(stats.max_node_work() >= 1);
    }
}
