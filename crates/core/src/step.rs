//! The zero-allocation step pipeline: caller-owned scratch buffers and
//! lightweight step outcomes.
//!
//! Before PR 3 every [`crate::ReversalStep`] carried an owned
//! `Vec<NodeId>` of reversed neighbors, so a 4.2 M-step run performed
//! 4.2 M heap allocations just to report what each step did. The
//! pipeline now splits a step into three pieces:
//!
//! * [`StepScratch`] — a **caller-owned, reusable** buffer the engine
//!   writes each step's reversed-neighbor list (and an opaque plan
//!   payload) into;
//! * [`StepOutcome`] — the lightweight, `Copy` result of a step: the
//!   stepping node's dense CSR index, the reversal count, and the NewPR
//!   dummy flag;
//! * [`PlanAux`] — an opaque payload carried from
//!   [`crate::alg::ReversalEngine::plan_step`] to
//!   [`crate::alg::ReversalEngine::apply_planned`] (the height engines
//!   stash the new height here so apply never re-scans the
//!   neighborhood).
//!
//! # Ownership contract
//!
//! The **caller** owns the scratch and is expected to reuse one
//! `StepScratch` for an entire run: `step_into` overwrites (never
//! appends to) the buffer, so after the warm-up growth of the first few
//! steps the pipeline performs no per-step allocation at all. The
//! buffer's contents are only meaningful until the next `plan_step` /
//! `step_into` call that receives the same scratch; callers that need to
//! keep a step's reversal set must copy it out (or use the allocating
//! [`crate::alg::ReversalEngine::step`] compatibility wrapper, which
//! does exactly that).

use lr_graph::NodeId;

/// The lightweight result of one engine step: everything the run-loop
/// bookkeeping needs, nothing heap-allocated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepOutcome {
    /// Dense CSR index of the node that stepped (see
    /// [`lr_graph::CsrGraph::index_of`]); run loops index their work
    /// vectors with it directly instead of re-resolving the `NodeId`.
    pub node_idx: usize,
    /// Number of edges reversed by the step (0 for NewPR dummy steps).
    pub reversal_count: usize,
    /// `true` for NewPR "dummy" steps that reverse nothing and only flip
    /// the parity bit (§4.1).
    pub dummy: bool,
}

/// Opaque payload a [`crate::alg::ReversalEngine::plan_step`] hands to
/// the matching [`crate::alg::ReversalEngine::apply_planned`].
///
/// Engines whose apply phase needs more than the reversed-neighbor list
/// (the Gafni–Bertsekas height engines precompute the stepping node's
/// new height during planning) smuggle it through here; all other
/// engines use [`PlanAux::default`]. The contents are meaningless to
/// callers — they only shuttle the value between the two trait calls.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlanAux(pub(crate) i64, pub(crate) i64);

/// A caller-owned, reusable buffer for the zero-allocation step
/// pipeline. See the [module docs](self) for the ownership contract.
#[derive(Debug, Clone, Default)]
pub struct StepScratch {
    /// Reversed neighbors of the most recent planned step, ascending by
    /// node id (the order every engine reverses in).
    pub(crate) reversed: Vec<NodeId>,
    /// Plan payload of the most recent planned step.
    pub(crate) aux: PlanAux,
}

impl StepScratch {
    /// An empty scratch; grows on first use and is then reused.
    pub fn new() -> Self {
        StepScratch::default()
    }

    /// A scratch pre-sized for steps reversing up to `degree` edges,
    /// avoiding even the warm-up growth.
    pub fn with_capacity(degree: usize) -> Self {
        StepScratch {
            reversed: Vec::with_capacity(degree),
            aux: PlanAux::default(),
        }
    }

    /// The reversed neighbors written by the most recent
    /// [`crate::alg::ReversalEngine::plan_step`] /
    /// [`crate::alg::ReversalEngine::step_into`], ascending by node id.
    pub fn reversed(&self) -> &[NodeId] {
        &self.reversed
    }

    /// The plan payload of the most recent planned step (pass to
    /// [`crate::alg::ReversalEngine::apply_planned`]).
    pub fn aux(&self) -> PlanAux {
        self.aux
    }

    /// Appends one reversed neighbor to the current plan. For
    /// [`crate::alg::ReversalEngine::plan_step`] implementations
    /// outside this crate; call [`StepScratch::clear`] first.
    pub fn push(&mut self, v: NodeId) {
        self.reversed.push(v);
    }

    /// Stores the plan payload to hand to
    /// [`crate::alg::ReversalEngine::apply_planned`]. [`PlanAux`] is
    /// opaque, so external engines that need a richer plan payload
    /// should stash it in their own state keyed by the stepping node
    /// and leave this at the default.
    pub fn set_aux(&mut self, aux: PlanAux) {
        self.aux = aux;
    }

    /// Resets the buffer for a new plan. Every `plan_step`
    /// implementation calls this first, so external callers normally
    /// never need to.
    pub fn clear(&mut self) {
        self.reversed.clear();
        self.aux = PlanAux::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_reuse_keeps_capacity() {
        let mut s = StepScratch::with_capacity(8);
        let cap = s.reversed.capacity();
        assert!(cap >= 8);
        s.reversed.push(NodeId::new(1));
        s.aux = PlanAux(3, 4);
        s.clear();
        assert!(s.reversed().is_empty());
        assert_eq!(s.aux(), PlanAux::default());
        assert_eq!(s.reversed.capacity(), cap, "clear must not shrink");
    }
}
