//! Zero-cost observability for the link-reversal stack.
//!
//! The crate splits observability into two regimes with very different
//! guarantees, mirroring the serial/parallel split the rest of the
//! workspace is built around:
//!
//! * **The global recorder** ([`Registry`], [`Span`] guards, the trace
//!   buffer) is *timing-oriented* and therefore nondeterministic: span
//!   durations and event order depend on the machine. It is designed to
//!   be free when off — every handle operation and every span start is
//!   gated behind a **single relaxed atomic load**, and no instrumented
//!   hot loop takes a lock or allocates unless a session is active.
//!   Handles ([`Counter`], [`Gauge`], [`Histogram`], [`SpanHandle`])
//!   are resolved against the registry **once at registration**; after
//!   that the hot path is pure `AtomicU64` arithmetic.
//! * **[`MetricsShard`]** is the *deterministic* side: a plain value
//!   type of saturating counters and maxima with a commutative,
//!   associative [`MetricsShard::merge`]. Per-worker shards folded in
//!   canonical shard order (the reorder-buffer discipline used by the
//!   sweep executor and the state-space explorer) render byte-identical
//!   output at every thread count, which is what the equivalence suites
//!   assert.
//!
//! A process records into the global recorder only between
//! [`ObsSession::start`] and [`ObsSession::finish`]. Sessions are
//! serialized by a process-wide gate so concurrent tests cannot
//! interleave counters; `finish` returns an [`ObsReport`] that renders
//! to the three sinks: a human summary table, a newline-JSON event log,
//! and a Chrome/Perfetto `trace_events` JSON document (see
//! [`ObsReport::render_chrome_trace`] and [`validate_chrome_trace`]).

mod registry;
mod shard;
mod sink;
mod span;

pub use registry::{
    counter, enabled, gauge, histogram, span_handle, Counter, Gauge, Histogram, HistogramSnapshot,
    Registry, SpanStatSnapshot,
};
pub use shard::MetricsShard;
pub use sink::{validate_chrome_trace, ObsReport};
pub use span::{instant, span, Span, SpanHandle, TraceEvent};

use std::sync::atomic::Ordering;
use std::sync::{Mutex, MutexGuard, OnceLock};

/// How much the global recorder captures, and which sink the CLI
/// renders at the end of the command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ObsMode {
    /// No recording at all: every instrumentation site reduces to one
    /// relaxed load. This is the default.
    Off,
    /// Counters, gauges, histograms, and span *aggregates* (count,
    /// total, min, max) — no per-event trace buffer. Rendered as a
    /// human table.
    Summary,
    /// Everything `Summary` records, plus the bounded trace-event
    /// buffer, rendered as a newline-JSON event log.
    Json,
    /// Everything `Summary` records, plus the bounded trace-event
    /// buffer, rendered as Chrome/Perfetto `trace_events` JSON.
    Chrome,
}

impl ObsMode {
    /// Parses a CLI argument (`off | summary | json | chrome`).
    pub fn parse(s: &str) -> Option<ObsMode> {
        match s {
            "off" => Some(ObsMode::Off),
            "summary" => Some(ObsMode::Summary),
            "json" => Some(ObsMode::Json),
            "chrome" => Some(ObsMode::Chrome),
            _ => None,
        }
    }

    /// The canonical CLI spelling (round-trips through [`ObsMode::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            ObsMode::Off => "off",
            ObsMode::Summary => "summary",
            ObsMode::Json => "json",
            ObsMode::Chrome => "chrome",
        }
    }

    /// Whether this mode keeps individual trace events (as opposed to
    /// aggregates only).
    pub fn captures_events(self) -> bool {
        matches!(self, ObsMode::Json | ObsMode::Chrome)
    }

    fn level(self) -> u8 {
        match self {
            ObsMode::Off => registry::LEVEL_OFF,
            ObsMode::Summary => registry::LEVEL_STATS,
            ObsMode::Json | ObsMode::Chrome => registry::LEVEL_EVENTS,
        }
    }
}

fn session_gate() -> &'static Mutex<()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    GATE.get_or_init(|| Mutex::new(()))
}

/// An exclusive recording window over the global recorder.
///
/// `start` resets the registry and trace buffer and raises the global
/// level; `finish` (or drop) lowers it back to off. A process-wide
/// mutex serializes sessions so tests running `--obs` commands in
/// parallel cannot interleave counters. The gate is poison-tolerant: a
/// panic inside one session does not wedge every later one.
pub struct ObsSession {
    mode: ObsMode,
    _gate: MutexGuard<'static, ()>,
}

impl ObsSession {
    /// Opens a session: waits for any other in-process session to end,
    /// zeroes all registered metrics and the trace buffer, and enables
    /// recording at `mode`'s level.
    pub fn start(mode: ObsMode) -> ObsSession {
        let gate = session_gate()
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        registry::global().reset();
        span::reset_trace();
        registry::LEVEL.store(mode.level(), Ordering::SeqCst);
        ObsSession { mode, _gate: gate }
    }

    /// The mode this session was opened with.
    pub fn mode(&self) -> ObsMode {
        self.mode
    }

    /// Stops recording and snapshots everything recorded during the
    /// session into an [`ObsReport`].
    pub fn finish(self) -> ObsReport {
        registry::LEVEL.store(registry::LEVEL_OFF, Ordering::SeqCst);
        let (events, dropped_events) = span::drain_trace();
        let reg = registry::global().snapshot();
        ObsReport {
            mode: self.mode,
            counters: reg.counters,
            gauges: reg.gauges,
            histograms: reg.histograms,
            spans: reg.spans,
            events,
            dropped_events,
        }
    }
}

impl Drop for ObsSession {
    fn drop(&mut self) {
        // `finish` already lowered the level; this covers early drops
        // (including panics mid-session) so recording never outlives
        // the gate.
        registry::LEVEL.store(registry::LEVEL_OFF, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_names_round_trip() {
        for mode in [
            ObsMode::Off,
            ObsMode::Summary,
            ObsMode::Json,
            ObsMode::Chrome,
        ] {
            assert_eq!(ObsMode::parse(mode.name()), Some(mode));
        }
        assert_eq!(ObsMode::parse("perfetto"), None);
    }

    #[test]
    fn disabled_recording_is_invisible() {
        let c = counter("test.disabled.counter");
        c.add(7);
        let session = ObsSession::start(ObsMode::Summary);
        let report = session.finish();
        let got = report
            .counters
            .iter()
            .find(|(name, _)| name == "test.disabled.counter")
            .map(|(_, v)| *v);
        assert_eq!(got, Some(0), "adds outside a session must not land");
    }

    #[test]
    fn session_records_counters_spans_and_histograms() {
        let session = ObsSession::start(ObsMode::Chrome);
        let c = counter("test.session.counter");
        c.add(3);
        c.inc();
        gauge("test.session.gauge").record_max(41);
        gauge("test.session.gauge").record_max(12);
        histogram("test.session.hist").observe(5);
        let handle = span_handle("test", "test.session.span");
        {
            let mut s = handle.start();
            s.arg("k", 9);
        }
        drop(span("test", "one-shot"));
        instant("test", "marker", &[("n", 1)]);
        let report = session.finish();

        assert!(report
            .counters
            .contains(&("test.session.counter".to_string(), 4)));
        assert!(report
            .gauges
            .contains(&("test.session.gauge".to_string(), 41)));
        let hist = report
            .histograms
            .iter()
            .find(|(name, _)| name == "test.session.hist")
            .map(|(_, snap)| snap.clone())
            .expect("histogram registered");
        assert_eq!((hist.count, hist.sum), (1, 5));
        let span_stat = report
            .spans
            .iter()
            .find(|(name, _)| name == "test.session.span")
            .map(|(_, s)| s.clone())
            .expect("span aggregated");
        assert_eq!(span_stat.count, 1);
        assert!(span_stat.max_ns >= span_stat.min_ns);
        // Chrome mode keeps the individual events too: the two spans
        // plus the instant marker.
        assert_eq!(report.events.len(), 3);
        assert_eq!(report.dropped_events, 0);
    }

    #[test]
    fn summary_mode_aggregates_without_events() {
        let session = ObsSession::start(ObsMode::Summary);
        drop(span("test", "agg-only"));
        let report = session.finish();
        assert!(report.events.is_empty());
        assert!(report.spans.iter().any(|(name, _)| name == "agg-only"));
    }

    #[test]
    fn sessions_reset_between_runs() {
        let session = ObsSession::start(ObsMode::Summary);
        counter("test.reset.counter").add(10);
        drop(session.finish());
        let session = ObsSession::start(ObsMode::Summary);
        let report = session.finish();
        let got = report
            .counters
            .iter()
            .find(|(name, _)| name == "test.reset.counter")
            .map(|(_, v)| *v);
        assert_eq!(got, Some(0));
    }
}
