//! Session output: the human summary table, the newline-JSON event
//! log, and the Chrome/Perfetto `trace_events` exporter (plus the
//! validator the CI trace gate runs).

use serde_json::{Map, Value};

use crate::registry::{HistogramSnapshot, SpanStatSnapshot};
use crate::span::TraceEvent;
use crate::ObsMode;

/// Everything one [`crate::ObsSession`] recorded, ready to render.
#[derive(Debug, Clone)]
pub struct ObsReport {
    /// The mode the session ran at.
    pub mode: ObsMode,
    /// All registered counters, sorted by name.
    pub counters: Vec<(String, u64)>,
    /// All registered gauges, sorted by name.
    pub gauges: Vec<(String, u64)>,
    /// All registered histograms, sorted by name.
    pub histograms: Vec<(String, HistogramSnapshot)>,
    /// Per-span-name timing aggregates, sorted by name.
    pub spans: Vec<(String, SpanStatSnapshot)>,
    /// Individual trace events (empty unless the mode captures them).
    pub events: Vec<TraceEvent>,
    /// Events discarded past the buffer cap.
    pub dropped_events: usize,
}

/// Renders nanoseconds with an adaptive unit.
fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

impl ObsReport {
    /// Number of registered metric slots (counters + gauges +
    /// histograms + span names) — the "registry size" recorded in the
    /// overhead bench rows.
    pub fn metric_count(&self) -> usize {
        self.counters.len() + self.gauges.len() + self.histograms.len() + self.spans.len()
    }

    /// The human `--obs summary` table.
    pub fn render_summary(&self) -> String {
        let mut out = String::new();
        out.push_str("== observability summary ==\n");
        if !self.spans.is_empty() {
            out.push_str("spans:\n");
            out.push_str(&format!(
                "  {:<34} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                "name", "count", "total", "mean", "min", "max"
            ));
            for (name, s) in &self.spans {
                let mean = s.total_ns.checked_div(s.count).unwrap_or(0);
                out.push_str(&format!(
                    "  {:<34} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                    name,
                    s.count,
                    fmt_ns(s.total_ns),
                    fmt_ns(mean),
                    fmt_ns(s.min_ns),
                    fmt_ns(s.max_ns),
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str("counters:\n");
            for (name, v) in &self.counters {
                out.push_str(&format!("  {name:<34} {v:>14}\n"));
            }
        }
        if !self.gauges.is_empty() {
            out.push_str("gauges:\n");
            for (name, v) in &self.gauges {
                out.push_str(&format!("  {name:<34} {v:>14}\n"));
            }
        }
        if !self.histograms.is_empty() {
            out.push_str("histograms:\n");
            for (name, h) in &self.histograms {
                out.push_str(&format!("  {name}: count={} sum={}\n", h.count, h.sum));
                for (idx, n) in &h.buckets {
                    let (lo, hi) = HistogramSnapshot::bucket_range(*idx);
                    out.push_str(&format!("    [{lo},{hi}): {n}\n"));
                }
            }
        }
        out.push_str(&format!(
            "events: {} captured, {} dropped\n",
            self.events.len(),
            self.dropped_events
        ));
        out
    }

    /// The newline-JSON event log: one JSON object per line — a `meta`
    /// header, then every aggregate, then every captured event.
    pub fn render_json_lines(&self) -> String {
        let mut lines: Vec<String> = Vec::new();
        let mut meta = Map::new();
        meta.insert("type".to_string(), Value::from("meta"));
        meta.insert("mode".to_string(), Value::from(self.mode.name()));
        meta.insert("events".to_string(), Value::from(self.events.len()));
        meta.insert(
            "dropped_events".to_string(),
            Value::from(self.dropped_events),
        );
        lines.push(value_line(Value::Object(meta)));
        for (name, v) in &self.counters {
            lines.push(value_line(kv_value("counter", name, *v)));
        }
        for (name, v) in &self.gauges {
            lines.push(value_line(kv_value("gauge", name, *v)));
        }
        for (name, s) in &self.spans {
            let mut m = Map::new();
            m.insert("type".to_string(), Value::from("span"));
            m.insert("name".to_string(), Value::from(name.clone()));
            m.insert("count".to_string(), Value::from(s.count));
            m.insert("total_ns".to_string(), Value::from(s.total_ns));
            m.insert("min_ns".to_string(), Value::from(s.min_ns));
            m.insert("max_ns".to_string(), Value::from(s.max_ns));
            lines.push(value_line(Value::Object(m)));
        }
        for e in &self.events {
            lines.push(value_line(event_value(e)));
        }
        let mut out = lines.join("\n");
        out.push('\n');
        out
    }

    /// The Chrome/Perfetto `trace_events` JSON document: an object with
    /// a `traceEvents` array of complete (`"X"`) and instant (`"i"`)
    /// events, loadable by `chrome://tracing` and `ui.perfetto.dev`.
    pub fn render_chrome_trace(&self) -> String {
        let mut doc = Map::new();
        let events: Vec<Value> = self.events.iter().map(event_value).collect();
        doc.insert("traceEvents".to_string(), Value::Array(events));
        doc.insert("displayTimeUnit".to_string(), Value::from("ms"));
        let mut other = Map::new();
        other.insert("mode".to_string(), Value::from(self.mode.name()));
        other.insert(
            "dropped_events".to_string(),
            Value::from(self.dropped_events),
        );
        let counters: Map<String, Value> = self
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), Value::from(*v)))
            .collect();
        other.insert("counters".to_string(), Value::Object(counters));
        doc.insert("otherData".to_string(), Value::Object(other));
        serde_json::to_string(&Value::Object(doc)).expect("trace document serializes")
    }
}

fn value_line(v: Value) -> String {
    serde_json::to_string(&v).expect("json line serializes")
}

fn kv_value(kind: &str, name: &str, v: u64) -> Value {
    let mut m = Map::new();
    m.insert("type".to_string(), Value::from(kind));
    m.insert("name".to_string(), Value::from(name));
    m.insert("value".to_string(), Value::from(v));
    Value::Object(m)
}

/// Rounds nanoseconds to microseconds, half-up — the single place the
/// obs pipeline leaves its canonical nanosecond unit. Chrome
/// `trace_events` timestamps are microseconds; truncation here is what
/// used to flatten sub-µs spans to `dur: 0`.
fn ns_to_us_half_up(ns: u64) -> u64 {
    (ns + 500) / 1000
}

/// One trace event in Chrome `trace_events` shape.
fn event_value(e: &TraceEvent) -> Value {
    let mut m = Map::new();
    m.insert("name".to_string(), Value::from(e.name.clone()));
    m.insert("cat".to_string(), Value::from(e.cat));
    m.insert("ph".to_string(), Value::from(e.ph.to_string()));
    m.insert("ts".to_string(), Value::from(ns_to_us_half_up(e.ts_ns)));
    if e.ph == 'X' {
        // A timed span never renders as `dur: 0` — a sub-µs span is
        // short, not absent, and Chrome drops zero-width slices.
        let dur = ns_to_us_half_up(e.dur_ns).max(u64::from(e.dur_ns > 0));
        m.insert("dur".to_string(), Value::from(dur));
    }
    if e.ph == 'i' {
        // Instant scope: thread.
        m.insert("s".to_string(), Value::from("t"));
    }
    m.insert("pid".to_string(), Value::from(1u64));
    m.insert("tid".to_string(), Value::from(e.tid));
    if !e.args.is_empty() {
        let args: Map<String, Value> = e
            .args
            .iter()
            .map(|(k, v)| (k.to_string(), Value::from(*v)))
            .collect();
        m.insert("args".to_string(), Value::Object(args));
    }
    Value::Object(m)
}

/// Validates `text` as a Chrome `trace_events` document (either the
/// object form with a `traceEvents` array or a bare event array) and
/// returns the number of events. This is what `lr obs validate` and
/// the CI trace gate run.
pub fn validate_chrome_trace(text: &str) -> Result<usize, String> {
    let doc: Value = serde_json::from_str(text).map_err(|e| format!("not valid JSON: {e}"))?;
    let events = match &doc {
        Value::Array(events) => events,
        Value::Object(m) => m
            .get("traceEvents")
            .and_then(Value::as_array)
            .ok_or("top-level object has no `traceEvents` array")?,
        _ => return Err("top level must be an object or an array".to_string()),
    };
    for (i, event) in events.iter().enumerate() {
        let obj = event
            .as_object()
            .ok_or_else(|| format!("event {i} is not an object"))?;
        let ph = obj
            .get("ph")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("event {i} has no string `ph`"))?;
        if obj.get("name").and_then(Value::as_str).is_none() {
            return Err(format!("event {i} has no string `name`"));
        }
        if obj.get("ts").and_then(Value::as_u64).is_none() {
            return Err(format!("event {i} has no numeric `ts`"));
        }
        for field in ["pid", "tid"] {
            if obj.get(field).and_then(Value::as_u64).is_none() {
                return Err(format!("event {i} has no numeric `{field}`"));
            }
        }
        if ph == "X" && obj.get("dur").and_then(Value::as_u64).is_none() {
            return Err(format!("complete event {i} has no numeric `dur`"));
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsMode, ObsSession};

    fn sample_report() -> ObsReport {
        let session = ObsSession::start(ObsMode::Chrome);
        crate::counter("sink.test.counter").add(11);
        crate::gauge("sink.test.gauge").set(4);
        crate::histogram("sink.test.hist").observe(3);
        let mut s = crate::span("sinktest", "sink.test.span");
        s.arg("round", 2);
        drop(s);
        crate::instant("sinktest", "sink.test.marker", &[("x", 1)]);
        session.finish()
    }

    #[test]
    fn chrome_trace_round_trips_through_the_validator() {
        let report = sample_report();
        let doc = report.render_chrome_trace();
        let n = validate_chrome_trace(&doc).expect("emitted trace validates");
        assert_eq!(n, report.events.len());
        assert!(n >= 2, "span + instant events expected");
    }

    #[test]
    fn bare_array_form_validates_too() {
        assert_eq!(
            validate_chrome_trace(r#"[{"name":"a","ph":"X","ts":1,"dur":2,"pid":1,"tid":1}]"#),
            Ok(1)
        );
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        assert!(validate_chrome_trace("not json").is_err());
        assert!(validate_chrome_trace(r#"{"events":[]}"#).is_err());
        assert!(validate_chrome_trace(r#"[{"ph":"X"}]"#).is_err());
        assert!(
            validate_chrome_trace(r#"[{"name":"a","ph":"X","ts":1,"pid":1,"tid":1}]"#).is_err(),
            "complete event without dur must fail"
        );
    }

    #[test]
    fn json_lines_are_individually_parseable() {
        let report = sample_report();
        let lines = report.render_json_lines();
        let mut kinds = std::collections::BTreeSet::new();
        for line in lines.lines() {
            let v: Value = serde_json::from_str(line).expect("line parses");
            let kind = v.get("type").and_then(Value::as_str);
            if let Some(kind) = kind {
                kinds.insert(kind.to_string());
            } else {
                // Event lines carry `ph` instead of `type`.
                assert!(v.get("ph").and_then(Value::as_str).is_some());
            }
        }
        assert!(kinds.contains("meta"));
        assert!(kinds.contains("counter"));
        assert!(kinds.contains("span"));
    }

    /// The sink is the only ns → µs boundary: half-up rounding, and a
    /// timed span never renders as `dur: 0`.
    #[test]
    fn sink_converts_nanoseconds_half_up_and_keeps_short_spans_visible() {
        let event = |ts_ns: u64, dur_ns: u64| TraceEvent {
            name: "e".to_string(),
            cat: "test",
            ph: 'X',
            ts_ns,
            dur_ns,
            tid: 1,
            args: Vec::new(),
        };
        let field = |e: &TraceEvent, key: &str| -> u64 {
            event_value(e).get(key).and_then(Value::as_u64).unwrap()
        };
        assert_eq!(field(&event(1_499, 0), "ts"), 1, "1 499 ns rounds down");
        assert_eq!(field(&event(1_500, 0), "ts"), 2, "1 500 ns rounds up");
        assert_eq!(field(&event(0, 2_700), "dur"), 3);
        assert_eq!(
            field(&event(0, 120), "dur"),
            1,
            "sub-µs span must not vanish"
        );
        assert_eq!(field(&event(0, 0), "dur"), 0, "instant-length span stays 0");
    }

    #[test]
    fn summary_mentions_every_section() {
        let report = sample_report();
        let text = report.render_summary();
        for needle in [
            "observability summary",
            "sink.test.counter",
            "sink.test.gauge",
            "sink.test.hist",
            "sink.test.span",
            "events:",
        ] {
            assert!(text.contains(needle), "summary missing {needle}: {text}");
        }
    }
}
