//! Deterministic, mergeable metrics: the value-type side of the crate.
//!
//! A [`MetricsShard`] carries no atomics and touches no global state.
//! Workers build one per unit of work (sweep cell, exploration layer,
//! engine run); the executor folds them in canonical order — the same
//! reorder-buffer discipline the sweep and exploration folds already
//! use — and because [`MetricsShard::merge`] is commutative and
//! associative over saturating adds and maxima, the folded shard (and
//! therefore [`MetricsShard::render`] output) is bit-identical at every
//! thread count. The equivalence suites assert exactly that.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A deterministic bag of saturating counters and high-water marks.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsShard {
    counts: BTreeMap<String, u64>,
    maxes: BTreeMap<String, u64>,
}

impl MetricsShard {
    /// An empty shard — the identity element of [`MetricsShard::merge`].
    pub fn new() -> MetricsShard {
        MetricsShard::default()
    }

    /// Adds `n` to the counter `key` (saturating).
    pub fn add(&mut self, key: impl Into<String>, n: u64) {
        let slot = self.counts.entry(key.into()).or_insert(0);
        *slot = slot.saturating_add(n);
    }

    /// Raises the high-water mark `key` to `v` if larger.
    pub fn record_max(&mut self, key: impl Into<String>, v: u64) {
        let slot = self.maxes.entry(key.into()).or_insert(0);
        *slot = (*slot).max(v);
    }

    /// Folds `other` into `self`: counters add (saturating), marks max.
    pub fn merge(&mut self, other: &MetricsShard) {
        for (key, v) in &other.counts {
            let slot = self.counts.entry(key.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (key, v) in &other.maxes {
            let slot = self.maxes.entry(key.clone()).or_insert(0);
            *slot = (*slot).max(*v);
        }
    }

    /// The counter `key` (0 when absent).
    pub fn count(&self, key: &str) -> u64 {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// The high-water mark `key` (0 when absent).
    pub fn max(&self, key: &str) -> u64 {
        self.maxes.get(key).copied().unwrap_or(0)
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.maxes.is_empty()
    }

    /// Number of distinct keys (counters + marks).
    pub fn len(&self) -> usize {
        self.counts.len() + self.maxes.len()
    }

    /// Canonical text rendering: one `kind key value` line per entry,
    /// keys sorted within kind. Two shards are equal iff their
    /// renderings are byte-identical, which is what the thread-count
    /// equivalence suites compare.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (key, v) in &self.counts {
            let _ = writeln!(out, "count {key} {v}");
        }
        for (key, v) in &self.maxes {
            let _ = writeln!(out, "max {key} {v}");
        }
        out
    }

    /// Publishes the shard into the global recorder (counters add,
    /// marks raise gauges) so deterministic metrics appear in `--obs`
    /// sinks next to the timing data. Inert when no session records.
    pub fn publish(&self) {
        if !crate::enabled() {
            return;
        }
        for (key, v) in &self.counts {
            crate::counter(key).add(*v);
        }
        for (key, v) in &self.maxes {
            crate::gauge(key).record_max(*v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_is_commutative_on_samples() {
        let mut a = MetricsShard::new();
        a.add("steps", 3);
        a.record_max("work", 9);
        let mut b = MetricsShard::new();
        b.add("steps", 4);
        b.add("rounds", 1);
        b.record_max("work", 2);

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.render(), ba.render());
        assert_eq!(ab.count("steps"), 7);
        assert_eq!(ab.max("work"), 9);
    }

    #[test]
    fn empty_is_identity() {
        let mut a = MetricsShard::new();
        a.add("x", 5);
        let snapshot = a.clone();
        a.merge(&MetricsShard::new());
        assert_eq!(a, snapshot);
        let mut e = MetricsShard::new();
        e.merge(&snapshot);
        assert_eq!(e, snapshot);
    }

    #[test]
    fn saturating_add_never_wraps() {
        let mut a = MetricsShard::new();
        a.add("big", u64::MAX - 1);
        a.add("big", 10);
        assert_eq!(a.count("big"), u64::MAX);
    }

    #[test]
    fn render_is_canonical_and_kind_separated() {
        let mut a = MetricsShard::new();
        a.record_max("zeta", 1);
        a.add("alpha", 2);
        a.add("beta", 3);
        assert_eq!(a.render(), "count alpha 2\ncount beta 3\nmax zeta 1\n");
    }
}
