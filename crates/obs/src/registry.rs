//! The lock-free metric registry and its atomic handles.
//!
//! Registration (name → slot) takes a mutex, but registration happens
//! once per metric per call site — instrumented loops resolve their
//! handles before entering the loop. After registration every
//! operation is relaxed `AtomicU64` arithmetic gated behind a single
//! relaxed load of the global level, so the disabled path costs one
//! predictable branch.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

/// Recording disabled: handles are inert.
pub(crate) const LEVEL_OFF: u8 = 0;
/// Aggregates only (counters/gauges/histograms/span stats).
pub(crate) const LEVEL_STATS: u8 = 1;
/// Aggregates plus the bounded per-event trace buffer.
pub(crate) const LEVEL_EVENTS: u8 = 2;

/// The process-wide recording level, written only by
/// [`crate::ObsSession`]. Instrumentation reads it with one relaxed
/// load.
pub(crate) static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_OFF);

/// Whether an observation session is currently recording. This is the
/// single relaxed load every instrumentation site is gated behind.
#[inline]
pub fn enabled() -> bool {
    LEVEL.load(Ordering::Relaxed) != LEVEL_OFF
}

/// Whether individual trace events (not just aggregates) are captured.
#[inline]
pub(crate) fn capture_events() -> bool {
    LEVEL.load(Ordering::Relaxed) >= LEVEL_EVENTS
}

/// A monotonically increasing counter handle.
///
/// Cloning shares the underlying slot; `add` is a no-op unless a
/// session is recording.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds `n` when recording is enabled.
    #[inline]
    pub fn add(&self, n: u64) {
        if enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one when recording is enabled.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current value (test/sink helper; racy under concurrency by
    /// design).
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-value / high-watermark gauge handle.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Overwrites the gauge when recording is enabled.
    #[inline]
    pub fn set(&self, v: u64) {
        if enabled() {
            self.0.store(v, Ordering::Relaxed);
        }
    }

    /// Raises the gauge to `v` if larger, when recording is enabled.
    #[inline]
    pub fn record_max(&self, v: u64) {
        if enabled() {
            self.0.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// The current value.
    pub fn value(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Power-of-two bucket cells backing a [`Histogram`].
///
/// Bucket `0` holds observations of `0`; bucket `k ≥ 1` holds
/// observations in `[2^(k-1), 2^k)`. 65 buckets cover the full `u64`
/// range.
pub(crate) struct HistogramCells {
    buckets: [AtomicU64; 65],
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCells {
    fn new() -> HistogramCells {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum.store(0, Ordering::Relaxed);
    }
}

/// Index of the power-of-two bucket holding `v`.
pub(crate) fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

/// A log₂-bucketed histogram handle.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCells>);

impl Histogram {
    /// Records one observation of `v` when recording is enabled.
    #[inline]
    pub fn observe(&self, v: u64) {
        if enabled() {
            self.0.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            self.0.count.fetch_add(1, Ordering::Relaxed);
            self.0.sum.fetch_add(v, Ordering::Relaxed);
        }
    }
}

/// A point-in-time copy of one histogram, as reported by
/// [`crate::ObsReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Non-empty buckets as `(bucket index, count)`; bucket `0` is the
    /// value `0`, bucket `k ≥ 1` covers `[2^(k-1), 2^k)`.
    pub buckets: Vec<(usize, u64)>,
}

impl HistogramSnapshot {
    /// Inclusive-exclusive value range of bucket `index`, for display.
    pub fn bucket_range(index: usize) -> (u64, u64) {
        if index == 0 {
            (0, 1)
        } else {
            (1u64 << (index - 1), (1u64 << (index - 1)).saturating_mul(2))
        }
    }
}

/// Aggregate timing for one span name (durations in nanoseconds).
pub(crate) struct SpanStat {
    pub(crate) count: AtomicU64,
    pub(crate) total_ns: AtomicU64,
    pub(crate) min_ns: AtomicU64,
    pub(crate) max_ns: AtomicU64,
}

impl SpanStat {
    fn new() -> SpanStat {
        SpanStat {
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    pub(crate) fn record(&self, dur_ns: u64) {
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(dur_ns, Ordering::Relaxed);
        self.min_ns.fetch_min(dur_ns, Ordering::Relaxed);
        self.max_ns.fetch_max(dur_ns, Ordering::Relaxed);
    }

    fn reset(&self) {
        self.count.store(0, Ordering::Relaxed);
        self.total_ns.store(0, Ordering::Relaxed);
        self.min_ns.store(u64::MAX, Ordering::Relaxed);
        self.max_ns.store(0, Ordering::Relaxed);
    }
}

/// A point-in-time copy of one span aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStatSnapshot {
    /// How many spans with this name closed during the session.
    pub count: u64,
    /// Total time across all of them, nanoseconds.
    pub total_ns: u64,
    /// Shortest single span, nanoseconds (0 when `count == 0`).
    pub min_ns: u64,
    /// Longest single span, nanoseconds.
    pub max_ns: u64,
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<AtomicU64>>,
    gauges: BTreeMap<String, Arc<AtomicU64>>,
    histograms: BTreeMap<String, Arc<HistogramCells>>,
    spans: BTreeMap<String, Arc<SpanStat>>,
}

/// The process-wide metric registry.
///
/// Name → slot resolution takes the internal mutex; the returned
/// handles never do. Slots persist for the life of the process (so a
/// handle resolved in one session keeps pointing at the live slot in
/// the next); [`Registry::reset`] zeroes values without invalidating
/// handles.
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

/// Everything in the registry, copied out by value, sorted by name.
pub(crate) struct RegistrySnapshot {
    pub(crate) counters: Vec<(String, u64)>,
    pub(crate) gauges: Vec<(String, u64)>,
    pub(crate) histograms: Vec<(String, HistogramSnapshot)>,
    pub(crate) spans: Vec<(String, SpanStatSnapshot)>,
}

impl Registry {
    fn lock(&self) -> std::sync::MutexGuard<'_, RegistryInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Resolves (registering on first use) the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.lock();
        let slot = inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter(Arc::clone(slot))
    }

    /// Resolves (registering on first use) the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.lock();
        let slot = inner
            .gauges
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge(Arc::clone(slot))
    }

    /// Resolves (registering on first use) the histogram named `name`.
    pub fn histogram(&self, name: &str) -> Histogram {
        let mut inner = self.lock();
        let slot = inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(HistogramCells::new()));
        Histogram(Arc::clone(slot))
    }

    pub(crate) fn span_stat(&self, name: &str) -> Arc<SpanStat> {
        let mut inner = self.lock();
        let slot = inner
            .spans
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(SpanStat::new()));
        Arc::clone(slot)
    }

    /// Zeroes every registered value, keeping the slots (and therefore
    /// all outstanding handles) alive.
    pub fn reset(&self) {
        let inner = self.lock();
        for slot in inner.counters.values() {
            slot.store(0, Ordering::Relaxed);
        }
        for slot in inner.gauges.values() {
            slot.store(0, Ordering::Relaxed);
        }
        for slot in inner.histograms.values() {
            slot.reset();
        }
        for slot in inner.spans.values() {
            slot.reset();
        }
    }

    pub(crate) fn snapshot(&self) -> RegistrySnapshot {
        let inner = self.lock();
        RegistrySnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(name, slot)| (name.clone(), slot.load(Ordering::Relaxed)))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(name, slot)| (name.clone(), slot.load(Ordering::Relaxed)))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(name, cells)| {
                    let buckets = cells
                        .buckets
                        .iter()
                        .enumerate()
                        .filter_map(|(i, b)| {
                            let v = b.load(Ordering::Relaxed);
                            (v != 0).then_some((i, v))
                        })
                        .collect();
                    (
                        name.clone(),
                        HistogramSnapshot {
                            count: cells.count.load(Ordering::Relaxed),
                            sum: cells.sum.load(Ordering::Relaxed),
                            buckets,
                        },
                    )
                })
                .collect(),
            spans: inner
                .spans
                .iter()
                .map(|(name, stat)| {
                    let count = stat.count.load(Ordering::Relaxed);
                    (
                        name.clone(),
                        SpanStatSnapshot {
                            count,
                            total_ns: stat.total_ns.load(Ordering::Relaxed),
                            min_ns: if count == 0 {
                                0
                            } else {
                                stat.min_ns.load(Ordering::Relaxed)
                            },
                            max_ns: stat.max_ns.load(Ordering::Relaxed),
                        },
                    )
                })
                .collect(),
        }
    }
}

/// The process-wide registry all free functions resolve against.
pub(crate) fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(|| Registry {
        inner: Mutex::new(RegistryInner::default()),
    })
}

/// Resolves the global counter named `name`. Resolve once, outside the
/// loop being instrumented.
pub fn counter(name: &str) -> Counter {
    global().counter(name)
}

/// Resolves the global gauge named `name`.
pub fn gauge(name: &str) -> Gauge {
    global().gauge(name)
}

/// Resolves the global histogram named `name`.
pub fn histogram(name: &str) -> Histogram {
    global().histogram(name)
}

/// Resolves a reusable span handle (see [`crate::SpanHandle`]) for the
/// category/name pair. Resolve once, outside the loop.
pub fn span_handle(cat: &'static str, name: &str) -> crate::SpanHandle {
    crate::SpanHandle::new(cat, name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_indexing_covers_the_range() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), 64);
        for k in 0..64u32 {
            let lo = 1u64 << k;
            assert_eq!(bucket_index(lo), k as usize + 1);
            assert_eq!(bucket_index(lo + (lo - 1)), k as usize + 1);
        }
    }

    #[test]
    fn bucket_ranges_match_indexing() {
        for v in [0u64, 1, 2, 3, 7, 8, 1023, 1024, 1u64 << 40] {
            let idx = bucket_index(v);
            let (lo, hi) = HistogramSnapshot::bucket_range(idx);
            assert!(lo <= v, "bucket {idx} low bound {lo} > {v}");
            assert!(v < hi, "bucket {idx} high bound {hi} <= {v}");
        }
    }

    #[test]
    fn handles_share_slots_by_name() {
        // Go through a real session so the global level flips under the
        // process-wide gate and cannot interleave with other tests.
        let session = crate::ObsSession::start(crate::ObsMode::Summary);
        let a = global().counter("test.registry.shared");
        let b = global().counter("test.registry.shared");
        a.add(2);
        b.add(3);
        assert_eq!(a.value(), 5);
        assert_eq!(a.value(), b.value());
        drop(session.finish());
    }
}
