//! RAII span guards, instant markers, and the bounded trace buffer.
//!
//! A [`Span`] measures the wall-clock time between its creation and its
//! drop on a monotonic clock. Closing a span always folds into the
//! per-name aggregate ([`crate::SpanStatSnapshot`]); when the session
//! level captures events (`--obs json|chrome`) it additionally pushes a
//! [`TraceEvent`] into a bounded buffer. The buffer cap keeps
//! million-round runs from ballooning: past [`MAX_TRACE_EVENTS`] events
//! are counted, not stored, and the drop count is reported in the
//! [`crate::ObsReport`].

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use crate::registry::{self, SpanStat};

/// Hard cap on buffered trace events per session (2^18). Everything
/// past it is dropped and counted.
pub const MAX_TRACE_EVENTS: usize = 1 << 18;

static NEXT_TID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// Small dense per-thread id for trace events (first-use order).
    static TID: u64 = NEXT_TID.fetch_add(1, Ordering::Relaxed);
}

fn current_tid() -> u64 {
    TID.with(|t| *t)
}

/// One recorded trace event, already normalized to the session epoch.
///
/// `ph` follows the Chrome `trace_events` phase alphabet: `'X'` for a
/// complete (duration) event, `'i'` for an instant marker.
///
/// Time is **nanoseconds everywhere** inside lr-obs — the same unit the
/// per-name [`crate::SpanStatSnapshot`] aggregates use — so an event's
/// `dur_ns` and its span's recorded duration are literally the same
/// number. Chrome's microsecond `ts`/`dur` fields are produced by the
/// sink at render time, nowhere else.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Event name (span name or marker name).
    pub name: String,
    /// Coarse category, e.g. `"engine"`, `"sweep"`, `"explore"`.
    pub cat: &'static str,
    /// Chrome phase: `'X'` (complete) or `'i'` (instant).
    pub ph: char,
    /// Nanoseconds since the session opened.
    pub ts_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Dense per-thread id.
    pub tid: u64,
    /// Numeric key/value payload.
    pub args: Vec<(&'static str, u64)>,
}

struct TraceBuf {
    epoch: Instant,
    events: Vec<TraceEvent>,
    dropped: usize,
}

fn trace_buf() -> &'static Mutex<TraceBuf> {
    static BUF: OnceLock<Mutex<TraceBuf>> = OnceLock::new();
    BUF.get_or_init(|| {
        Mutex::new(TraceBuf {
            epoch: Instant::now(),
            events: Vec::new(),
            dropped: 0,
        })
    })
}

fn lock_buf() -> std::sync::MutexGuard<'static, TraceBuf> {
    trace_buf()
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Clears the buffer and re-anchors the epoch (called on session start).
pub(crate) fn reset_trace() {
    let mut buf = lock_buf();
    buf.epoch = Instant::now();
    buf.events.clear();
    buf.dropped = 0;
}

/// Takes every buffered event plus the dropped count (session finish).
pub(crate) fn drain_trace() -> (Vec<TraceEvent>, usize) {
    let mut buf = lock_buf();
    let dropped = buf.dropped;
    buf.dropped = 0;
    (std::mem::take(&mut buf.events), dropped)
}

fn push_event(mut event: TraceEvent, begin: Option<Instant>) {
    let mut buf = lock_buf();
    if buf.events.len() >= MAX_TRACE_EVENTS {
        buf.dropped += 1;
        return;
    }
    let at = begin.unwrap_or_else(Instant::now);
    event.ts_ns = at
        .checked_duration_since(buf.epoch)
        .unwrap_or_default()
        .as_nanos() as u64;
    buf.events.push(event);
}

struct LiveSpan {
    name: Arc<str>,
    cat: &'static str,
    stat: Arc<SpanStat>,
    begin: Instant,
    args: Vec<(&'static str, u64)>,
}

/// An open span; the measured interval closes when the guard drops.
///
/// When no session is recording this is an inert zero-field wrapper —
/// creating and dropping it does nothing beyond one relaxed load.
pub struct Span {
    live: Option<LiveSpan>,
}

impl Span {
    /// Attaches a numeric argument to the span's trace event. Inert
    /// when the span is disabled.
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if let Some(live) = &mut self.live {
            live.args.push((key, value));
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(live) = self.live.take() else {
            return;
        };
        let dur = live.begin.elapsed();
        let dur_ns = dur.as_nanos() as u64;
        live.stat.record(dur_ns);
        if registry::capture_events() {
            push_event(
                TraceEvent {
                    name: live.name.as_ref().to_string(),
                    cat: live.cat,
                    ph: 'X',
                    ts_ns: 0,
                    dur_ns,
                    tid: current_tid(),
                    args: live.args,
                },
                Some(live.begin),
            );
        }
    }
}

/// A pre-resolved span site: one registry lookup at construction, then
/// [`SpanHandle::start`] is lock-free (aggregate slot already in hand).
#[derive(Clone)]
pub struct SpanHandle {
    name: Arc<str>,
    cat: &'static str,
    stat: Arc<SpanStat>,
}

impl SpanHandle {
    pub(crate) fn new(cat: &'static str, name: &str) -> SpanHandle {
        SpanHandle {
            name: Arc::from(name),
            cat,
            stat: registry::global().span_stat(name),
        }
    }

    /// Opens a span at this site; inert unless a session is recording.
    #[inline]
    pub fn start(&self) -> Span {
        if !registry::enabled() {
            return Span { live: None };
        }
        Span {
            live: Some(LiveSpan {
                name: Arc::clone(&self.name),
                cat: self.cat,
                stat: Arc::clone(&self.stat),
                begin: Instant::now(),
                args: Vec::new(),
            }),
        }
    }
}

/// One-shot span for cold call sites (resolves the aggregate slot per
/// call — use [`crate::span_handle`] inside loops).
pub fn span(cat: &'static str, name: impl AsRef<str>) -> Span {
    if !registry::enabled() {
        return Span { live: None };
    }
    let name = name.as_ref();
    Span {
        live: Some(LiveSpan {
            name: Arc::from(name),
            cat,
            stat: registry::global().span_stat(name),
            begin: Instant::now(),
            args: Vec::new(),
        }),
    }
}

/// Emits an instant marker event (only lands in event-capturing modes).
pub fn instant(cat: &'static str, name: impl AsRef<str>, args: &[(&'static str, u64)]) {
    if !registry::capture_events() {
        return;
    }
    push_event(
        TraceEvent {
            name: name.as_ref().to_string(),
            cat,
            ph: 'i',
            ts_ns: 0,
            dur_ns: 0,
            tid: current_tid(),
            args: args.to_vec(),
        },
        None,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{ObsMode, ObsSession};

    #[test]
    fn trace_buffer_caps_and_counts_drops() {
        let session = ObsSession::start(ObsMode::Json);
        // Fill past the cap cheaply with instants.
        for _ in 0..MAX_TRACE_EVENTS + 10 {
            instant("test", "flood", &[]);
        }
        let report = session.finish();
        assert_eq!(report.events.len(), MAX_TRACE_EVENTS);
        assert_eq!(report.dropped_events, 10);
    }

    #[test]
    fn span_timestamps_are_session_relative_and_ordered() {
        let session = ObsSession::start(ObsMode::Chrome);
        let handle = crate::span_handle("test", "ordered");
        drop(handle.start());
        drop(handle.start());
        let report = session.finish();
        let spans: Vec<&TraceEvent> = report
            .events
            .iter()
            .filter(|e| e.name == "ordered")
            .collect();
        assert_eq!(spans.len(), 2);
        assert!(spans[0].ts_ns <= spans[1].ts_ns);
    }

    /// Regression (pre-fix failure): the per-name aggregate recorded
    /// nanoseconds while the trace event carried truncated
    /// microseconds, so the two disagreed for every span and sub-µs
    /// spans flattened to duration 0. With ns end-to-end, a single
    /// span's trace-event duration and its aggregate total are the
    /// same number — and never 0 for a timed span.
    #[test]
    fn span_aggregate_and_trace_event_share_one_unit() {
        let session = ObsSession::start(ObsMode::Chrome);
        {
            let _span = crate::span("test", "unit.consistency");
            // Busy-wait a few µs so the duration is unambiguously
            // nonzero in both representations.
            let begin = Instant::now();
            while begin.elapsed().as_nanos() < 5_000 {
                std::hint::spin_loop();
            }
        }
        let report = session.finish();
        let event = report
            .events
            .iter()
            .find(|e| e.name == "unit.consistency" && e.ph == 'X')
            .expect("span event captured");
        let (_, stat) = report
            .spans
            .iter()
            .find(|(name, _)| name == "unit.consistency")
            .expect("span aggregate registered");
        assert_eq!(stat.count, 1);
        assert_eq!(
            event.dur_ns, stat.total_ns,
            "trace event and aggregate must express the same unit"
        );
        assert!(event.dur_ns >= 5_000, "span duration lost precision");
    }
}
