//! Property tests for [`lr_obs::MetricsShard`] merge: the algebra the
//! thread-count equivalence suites lean on. Counters are saturating
//! `u64` adds and marks are maxima, so merge must be exactly
//! associative, commutative, identity-preserving, and — the property
//! the sweep/explore folds actually use — order-insensitive: folding
//! any permutation of any partition of the same observations yields a
//! byte-identical [`lr_obs::MetricsShard::render`].

use lr_obs::MetricsShard;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One recorded observation: a key index, a value, and whether it is a
/// counter add or a high-water mark.
#[derive(Debug, Clone, Copy)]
struct Obs {
    key: usize,
    value: u64,
    is_max: bool,
}

const KEYS: [&str; 6] = [
    "engine.steps",
    "engine.rounds",
    "sweep.cells",
    "explore.states",
    "work.max",
    "frontier.max",
];

/// Deterministic observation stream from entropy. Values are drawn
/// near `u64::MAX` occasionally so saturation is exercised.
fn observations(seed: u64, len: usize) -> Vec<Obs> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let key = rng.gen_range(0..KEYS.len());
            let value = if rng.gen_range(0u32..50) == 0 {
                u64::MAX - rng.gen_range(0u64..4)
            } else {
                rng.gen_range(0u64..10_000)
            };
            Obs {
                key,
                value,
                is_max: rng.gen_range(0u32..3) == 0,
            }
        })
        .collect()
}

fn apply(shard: &mut MetricsShard, obs: &[Obs]) {
    for o in obs {
        if o.is_max {
            shard.record_max(KEYS[o.key], o.value);
        } else {
            shard.add(KEYS[o.key], o.value);
        }
    }
}

fn shard_of(obs: &[Obs]) -> MetricsShard {
    let mut s = MetricsShard::new();
    apply(&mut s, obs);
    s
}

/// Deterministic permutation of `0..n` (the vendored proptest has no
/// `prop_shuffle`).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x5EED_0B5E_55AB_1E00);
    let mut idx: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        let j = rng.gen_range(0..i + 1);
        idx.swap(i, j);
    }
    idx
}

/// Splits `obs` into `chunks` contiguous chunks (possibly empty — empty
/// shards must merge as identities).
fn chunked(obs: &[Obs], chunks: usize) -> Vec<&[Obs]> {
    let chunks = chunks.max(1);
    let per = obs.len().div_ceil(chunks).max(1);
    let mut out: Vec<&[Obs]> = obs.chunks(per).collect();
    while out.len() < chunks {
        out.push(&[]);
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Order-insensitivity: folding per-chunk shards in a shuffled
    /// order reproduces the single-pass shard byte-for-byte.
    #[test]
    fn shuffled_fold_is_byte_identical_to_single_pass(
        seed in any::<u64>(),
        len in 0usize..400,
        chunks in 1usize..12,
        order_seed in any::<u64>(),
    ) {
        let obs = observations(seed, len);
        let single = shard_of(&obs);
        let parts: Vec<MetricsShard> =
            chunked(&obs, chunks).iter().map(|c| shard_of(c)).collect();
        let mut folded = MetricsShard::new();
        for &i in &permutation(parts.len(), order_seed) {
            folded.merge(&parts[i]);
        }
        prop_assert_eq!(&folded, &single);
        prop_assert_eq!(folded.render(), single.render());
    }

    /// Associativity: (a ∪ b) ∪ c = a ∪ (b ∪ c), exactly.
    #[test]
    fn merge_is_associative(seed in any::<u64>(), len in 3usize..300) {
        let obs = observations(seed, len);
        let third = len / 3;
        let (a, b, c) = (
            shard_of(&obs[..third]),
            shard_of(&obs[third..2 * third]),
            shard_of(&obs[2 * third..]),
        );
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        prop_assert_eq!(left.render(), right.render());
    }

    /// Commutativity and the empty identity, under saturation too.
    #[test]
    fn merge_is_commutative_with_identity(
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
        len in 0usize..200,
    ) {
        let a = shard_of(&observations(seed_a, len));
        let b = shard_of(&observations(seed_b, len / 2));
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        let mut with_empty = a.clone();
        with_empty.merge(&MetricsShard::new());
        prop_assert_eq!(&with_empty, &a);
        let mut from_empty = MetricsShard::new();
        from_empty.merge(&a);
        prop_assert_eq!(&from_empty, &a);
    }
}
