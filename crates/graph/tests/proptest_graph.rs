//! Property-based tests for the graph substrate: structural invariants
//! that must hold for every generated graph, orientation, and embedding.

use lr_graph::{generate, DirectedView, NodeId, Orientation, UndirectedGraph};
use proptest::prelude::*;

fn graph_strategy() -> impl Strategy<Value = UndirectedGraph> {
    (2usize..=14, 0usize..=30, any::<u64>())
        .prop_map(|(n, extra, seed)| generate::random_connected(n, extra, seed).graph)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Degrees sum to twice the edge count (handshake lemma).
    #[test]
    fn handshake_lemma(g in graph_strategy()) {
        let sum: usize = g.nodes().map(|u| g.degree(u)).sum();
        prop_assert_eq!(sum, 2 * g.edge_count());
    }

    /// `edges()` yields each edge once, canonically ordered.
    #[test]
    fn edges_are_canonical(g in graph_strategy()) {
        let edges: Vec<(NodeId, NodeId)> = g.edges().collect();
        for &(u, v) in &edges {
            prop_assert!(u < v);
            prop_assert!(g.contains_edge(u, v));
            prop_assert!(g.contains_edge(v, u));
        }
        let mut dedup = edges.clone();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), g.edge_count());
    }

    /// Any orientation built from a node order is acyclic, and reversing
    /// one edge twice restores it.
    #[test]
    fn order_orientations_are_acyclic(g in graph_strategy(), seed in any::<u64>()) {
        let o = generate::random_orientation(&g, seed);
        prop_assert!(DirectedView::new(&g, &o).is_acyclic());
        prop_assert!(o.covers(&g));
        if let Some((u, v)) = g.edges().next() {
            let mut o2 = o.clone();
            o2.reverse(u, v).unwrap();
            prop_assert_ne!(o2.dir(u, v), o.dir(u, v));
            o2.reverse(u, v).unwrap();
            prop_assert_eq!(&o2, &o);
        }
    }

    /// In-degree plus out-degree equals degree at every node.
    #[test]
    fn degree_split(g in graph_strategy(), seed in any::<u64>()) {
        let o = generate::random_orientation(&g, seed);
        let view = DirectedView::new(&g, &o);
        for u in g.nodes() {
            prop_assert_eq!(view.in_degree(u) + view.out_degree(u), g.degree(u));
        }
    }

    /// Topological order respects every directed edge.
    #[test]
    fn topological_order_is_consistent(g in graph_strategy(), seed in any::<u64>()) {
        let o = generate::random_orientation(&g, seed);
        let view = DirectedView::new(&g, &o);
        let order = view.topological_sort().expect("acyclic");
        let pos: std::collections::BTreeMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &u)| (u, i)).collect();
        for (t, h) in o.directed_edges() {
            prop_assert!(pos[&t] < pos[&h]);
        }
    }

    /// Every DAG has at least one sink and one source; no node is both
    /// unless isolated (excluded by connectivity, n ≥ 2).
    #[test]
    fn sinks_and_sources_exist(g in graph_strategy(), seed in any::<u64>()) {
        let o = generate::random_orientation(&g, seed);
        let view = DirectedView::new(&g, &o);
        prop_assert!(!view.sinks().is_empty());
        prop_assert!(!view.sources().is_empty());
        for u in g.nodes() {
            prop_assert!(!(view.is_sink(u) && view.is_source(u)));
        }
    }

    /// `nodes_reaching(dest)` is closed under taking in-neighbors... i.e.
    /// every node with an edge into the reaching set is itself reaching.
    #[test]
    fn reaching_set_is_closed(g in graph_strategy(), seed in any::<u64>()) {
        let o = generate::random_orientation(&g, seed);
        let view = DirectedView::new(&g, &o);
        let dest = g.nodes().next().unwrap();
        let reach = view.nodes_reaching(dest);
        for &r in &reach {
            for v in view.in_neighbors(r) {
                prop_assert!(reach.contains(&v));
            }
        }
        // And each reaching node has an actual directed path.
        for &r in &reach {
            prop_assert!(view.directed_path(r, dest).is_some());
        }
    }

    /// The plane embedding of an acyclic orientation puts every edge
    /// left-to-right, and destination-orientation is equivalent to
    /// "every node reaches dest".
    #[test]
    fn embedding_and_reachability(n in 2usize..=12, extra in 0usize..=20, seed in any::<u64>()) {
        let inst = generate::random_connected(n, extra, seed);
        let emb = inst.embedding();
        for (t, h) in inst.init.directed_edges() {
            prop_assert!(emb.is_left_of(t, h));
            prop_assert!(emb.left_to_right(&inst.init, t, h));
        }
        let view = inst.view();
        let oriented = view.is_destination_oriented(inst.dest);
        let all_reach = inst.graph.nodes().all(|u| view.can_reach(u, inst.dest));
        prop_assert_eq!(oriented, all_reach);
    }

    /// Parse/serialize round trip through the text format.
    #[test]
    fn text_round_trip(n in 2usize..=10, extra in 0usize..=12, seed in any::<u64>()) {
        let inst = generate::random_connected(n, extra, seed);
        let text = lr_graph::parse::to_text(&inst);
        let back = lr_graph::parse::parse_instance(&text).unwrap();
        prop_assert_eq!(back, inst);
    }

    /// Orientation serde rebuilds the same direction assignment.
    #[test]
    fn orientation_serde(g in graph_strategy(), seed in any::<u64>()) {
        let o = generate::random_orientation(&g, seed);
        let json = serde_json::to_string(&o).unwrap();
        let back: Orientation = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, o);
    }

    /// Each deterministic streaming generator emits exactly the flat
    /// form of its materializing counterpart, at every size.
    #[test]
    fn streaming_deterministic_families_match(n in 2usize..=24, rows in 1usize..=6, cols in 1usize..=6, depth in 0usize..=4) {
        use lr_graph::{stream, CsrInstance};
        prop_assert_eq!(
            stream::chain_away(n),
            CsrInstance::from_instance(&generate::chain_away(n))
        );
        prop_assert_eq!(
            stream::chain_toward(n),
            CsrInstance::from_instance(&generate::chain_toward(n))
        );
        prop_assert_eq!(
            stream::alternating_chain(n),
            CsrInstance::from_instance(&generate::alternating_chain(n))
        );
        prop_assert_eq!(
            stream::star_away(n),
            CsrInstance::from_instance(&generate::star_away(n))
        );
        prop_assert_eq!(
            stream::complete_away(n),
            CsrInstance::from_instance(&generate::complete_away(n))
        );
        prop_assert_eq!(
            stream::binary_tree_away(depth),
            CsrInstance::from_instance(&generate::binary_tree_away(depth))
        );
        if rows * cols >= 2 {
            prop_assert_eq!(
                stream::grid_away(rows, cols),
                CsrInstance::from_instance(&generate::grid_away(rows, cols))
            );
        }
    }

    /// The randomized streaming generators replay the exact RNG draws of
    /// their materializing counterparts, so the flat forms coincide for
    /// every seed.
    #[test]
    fn streaming_random_families_match(
        n in 2usize..=20,
        extra in 0usize..=24,
        depth in 1usize..=4,
        p_percent in 0u64..=100,
        seed in any::<u64>(),
    ) {
        use lr_graph::{stream, CsrInstance};
        let width = extra % 5 + 1;
        let p = p_percent as f64 / 100.0;
        prop_assert_eq!(
            stream::random_connected(n, extra, seed),
            CsrInstance::from_instance(&generate::random_connected(n, extra, seed))
        );
        prop_assert_eq!(
            stream::layered(width, depth, p, seed),
            CsrInstance::from_instance(&generate::layered(width, depth, p, seed))
        );
    }
}
