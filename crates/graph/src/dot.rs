//! Graphviz DOT export for directed views, handy for debugging executions
//! and for the examples' visual output.

use std::fmt::Write as _;

use crate::{DirectedView, NodeId};

/// Options controlling [`to_dot`] output.
#[derive(Debug, Clone, Default)]
pub struct DotOptions {
    /// Node drawn with a double circle (typically the destination).
    pub destination: Option<NodeId>,
    /// Fill sinks with a highlight color.
    pub highlight_sinks: bool,
    /// Graph name in the output.
    pub name: Option<String>,
}

/// Renders a directed view as a Graphviz `digraph`.
///
/// ```
/// use lr_graph::{dot, generate};
/// let inst = lr_graph::generate::chain_away(3);
/// let s = dot::to_dot(&inst.view(), &dot::DotOptions {
///     destination: Some(inst.dest),
///     highlight_sinks: true,
///     name: Some("chain".into()),
/// });
/// assert!(s.contains("digraph chain"));
/// assert!(s.contains("n0 -> n1"));
/// # let _ = generate::chain_away(3);
/// ```
pub fn to_dot(view: &DirectedView<'_>, opts: &DotOptions) -> String {
    let mut out = String::new();
    let name = opts.name.as_deref().unwrap_or("G");
    writeln!(out, "digraph {name} {{").expect("write to String cannot fail");
    writeln!(out, "    rankdir=LR;").expect("write to String cannot fail");
    for u in view.graph().nodes() {
        let mut attrs: Vec<String> = Vec::new();
        if opts.destination == Some(u) {
            attrs.push("shape=doublecircle".to_string());
        }
        if opts.highlight_sinks && view.is_sink(u) {
            attrs.push("style=filled".to_string());
            attrs.push("fillcolor=lightcoral".to_string());
        }
        if attrs.is_empty() {
            writeln!(out, "    {u};").expect("write to String cannot fail");
        } else {
            writeln!(out, "    {u} [{}];", attrs.join(", ")).expect("write to String cannot fail");
        }
    }
    for (t, h) in view.orientation().directed_edges() {
        writeln!(out, "    {t} -> {h};").expect("write to String cannot fail");
    }
    writeln!(out, "}}").expect("write to String cannot fail");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    #[test]
    fn renders_nodes_edges_and_destination() {
        let inst = generate::chain_away(3);
        let s = to_dot(
            &inst.view(),
            &DotOptions {
                destination: Some(inst.dest),
                highlight_sinks: true,
                name: Some("t".into()),
            },
        );
        assert!(s.starts_with("digraph t {"));
        assert!(s.contains("n0 [shape=doublecircle]"));
        assert!(s.contains("n2 [style=filled, fillcolor=lightcoral]"));
        assert!(s.contains("n0 -> n1;"));
        assert!(s.contains("n1 -> n2;"));
        assert!(s.trim_end().ends_with('}'));
    }

    #[test]
    fn default_options_render_plain_nodes() {
        let inst = generate::chain_away(3);
        let s = to_dot(&inst.view(), &DotOptions::default());
        assert!(s.contains("digraph G {"));
        assert!(s.contains("    n1;"));
        assert!(!s.contains("doublecircle"));
    }
}
