use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::{GraphError, NodeId, UndirectedGraph};

/// The direction of an edge from one endpoint's perspective, matching the
/// paper's state variable `dir[u, v] ∈ {in, out}`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EdgeDir {
    /// The edge points *toward* this node (incoming).
    In,
    /// The edge points *away from* this node (outgoing).
    Out,
}

impl EdgeDir {
    /// The opposite direction.
    #[must_use]
    pub fn flipped(self) -> Self {
        match self {
            EdgeDir::In => EdgeDir::Out,
            EdgeDir::Out => EdgeDir::In,
        }
    }
}

/// A direction assignment for every edge of an [`UndirectedGraph`]: the
/// directed version `G' = (V, E')` of §2.
///
/// Internally each canonical edge `(u, v)` with `u < v` maps to its *tail*
/// (the endpoint the edge points away from). The representation makes the
/// paper's Invariant 3.1 (`dir[u,v] = in` iff `dir[v,u] = out`) true by
/// construction *for this type*; the algorithm crate additionally keeps the
/// paper's duplicated per-endpoint representation so that Invariant 3.1 can
/// be checked rather than assumed.
///
/// ```
/// use lr_graph::{EdgeDir, NodeId, Orientation, UndirectedGraph};
///
/// let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2)]).unwrap();
/// let (a, b, c) = (NodeId::new(0), NodeId::new(1), NodeId::new(2));
/// let mut o = Orientation::new();
/// o.set_from_to(a, b);
/// o.set_from_to(c, b);
/// assert_eq!(o.dir(a, b), Some(EdgeDir::Out));
/// assert_eq!(o.dir(b, a), Some(EdgeDir::In));
/// o.reverse(a, b).unwrap();
/// assert_eq!(o.dir(a, b), Some(EdgeDir::In));
/// # let _ = g;
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct Orientation {
    /// canonical edge (min, max) -> tail node (edge points away from it)
    tails: BTreeMap<(NodeId, NodeId), NodeId>,
}

// Serialized as the list of directed edges `(tail, head)` — JSON maps
// require string keys, so the map representation is not serialized as-is.
impl Serialize for Orientation {
    fn serialize<S: serde::Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let edges: Vec<(NodeId, NodeId)> = self.directed_edges().collect();
        edges.serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Orientation {
    fn deserialize<D: serde::Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let edges = Vec::<(NodeId, NodeId)>::deserialize(deserializer)?;
        let mut o = Orientation::new();
        for (tail, head) in edges {
            o.set_from_to(tail, head);
        }
        Ok(o)
    }
}

fn canonical(u: NodeId, v: NodeId) -> (NodeId, NodeId) {
    if u < v {
        (u, v)
    } else {
        (v, u)
    }
}

impl Orientation {
    /// Creates an empty orientation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Orients every edge of `graph` from the earlier to the later node in
    /// `order`. Any total order yields an acyclic orientation.
    ///
    /// Nodes missing from `order` are treated as larger than all listed
    /// nodes (ties broken by id), but generators always pass a complete
    /// order.
    pub fn from_order(graph: &UndirectedGraph, order: &[NodeId]) -> Self {
        let rank: BTreeMap<NodeId, usize> =
            order.iter().enumerate().map(|(i, &n)| (n, i)).collect();
        let pos = |n: NodeId| (rank.get(&n).copied().unwrap_or(usize::MAX), n);
        let mut o = Self::new();
        for (u, v) in graph.edges() {
            if pos(u) < pos(v) {
                o.set_from_to(u, v);
            } else {
                o.set_from_to(v, u);
            }
        }
        o
    }

    /// Directs the edge between `u` and `v` as `u → v`, inserting it if the
    /// edge was not yet oriented.
    pub fn set_from_to(&mut self, u: NodeId, v: NodeId) {
        self.tails.insert(canonical(u, v), u);
    }

    /// The direction of edge `{u, v}` from `u`'s perspective, or `None` if
    /// the edge is not oriented by this assignment.
    pub fn dir(&self, u: NodeId, v: NodeId) -> Option<EdgeDir> {
        self.tails.get(&canonical(u, v)).map(
            |&tail| {
                if tail == u {
                    EdgeDir::Out
                } else {
                    EdgeDir::In
                }
            },
        )
    }

    /// Returns `true` if the edge `{u, v}` is oriented `u → v`.
    pub fn points_from_to(&self, u: NodeId, v: NodeId) -> bool {
        self.dir(u, v) == Some(EdgeDir::Out)
    }

    /// The tail (source endpoint) of the edge `{u, v}`.
    pub fn tail(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        self.tails.get(&canonical(u, v)).copied()
    }

    /// The head (target endpoint) of the edge `{u, v}`.
    pub fn head(&self, u: NodeId, v: NodeId) -> Option<NodeId> {
        let (a, b) = canonical(u, v);
        self.tails
            .get(&(a, b))
            .map(|&tail| if tail == a { b } else { a })
    }

    /// Reverses the direction of edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownEdge`] if the edge is not oriented.
    pub fn reverse(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let key = canonical(u, v);
        match self.tails.get_mut(&key) {
            Some(tail) => {
                *tail = if *tail == key.0 { key.1 } else { key.0 };
                Ok(())
            }
            None => Err(GraphError::UnknownEdge(u, v)),
        }
    }

    /// Number of oriented edges.
    pub fn edge_count(&self) -> usize {
        self.tails.len()
    }

    /// Iterates over all directed edges as `(tail, head)` pairs in canonical
    /// edge order.
    pub fn directed_edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.tails
            .iter()
            .map(|(&(a, b), &tail)| if tail == a { (a, b) } else { (b, a) })
    }

    /// Returns `true` if this orientation covers exactly the edges of
    /// `graph`.
    pub fn covers(&self, graph: &UndirectedGraph) -> bool {
        self.tails.len() == graph.edge_count()
            && graph.edges().all(|(u, v)| self.tails.contains_key(&(u, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn flipped_is_involutive() {
        assert_eq!(EdgeDir::In.flipped(), EdgeDir::Out);
        assert_eq!(EdgeDir::Out.flipped().flipped(), EdgeDir::Out);
    }

    #[test]
    fn set_and_query_both_perspectives() {
        let mut o = Orientation::new();
        o.set_from_to(n(3), n(1));
        assert_eq!(o.dir(n(3), n(1)), Some(EdgeDir::Out));
        assert_eq!(o.dir(n(1), n(3)), Some(EdgeDir::In));
        assert_eq!(o.tail(n(1), n(3)), Some(n(3)));
        assert_eq!(o.head(n(1), n(3)), Some(n(1)));
        assert!(o.points_from_to(n(3), n(1)));
        assert!(!o.points_from_to(n(1), n(3)));
    }

    #[test]
    fn dir_of_unoriented_edge_is_none() {
        let o = Orientation::new();
        assert_eq!(o.dir(n(0), n(1)), None);
        assert_eq!(o.tail(n(0), n(1)), None);
        assert_eq!(o.head(n(0), n(1)), None);
    }

    #[test]
    fn reverse_flips_direction() {
        let mut o = Orientation::new();
        o.set_from_to(n(0), n(1));
        o.reverse(n(0), n(1)).unwrap();
        assert!(o.points_from_to(n(1), n(0)));
        // Reversing via the other perspective works too.
        o.reverse(n(1), n(0)).unwrap();
        assert!(o.points_from_to(n(0), n(1)));
    }

    #[test]
    fn reverse_unknown_edge_errors() {
        let mut o = Orientation::new();
        assert_eq!(
            o.reverse(n(0), n(1)),
            Err(GraphError::UnknownEdge(n(0), n(1)))
        );
    }

    #[test]
    fn from_order_orients_along_order() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2)]).unwrap();
        let o = Orientation::from_order(&g, &[n(2), n(0), n(1)]);
        assert!(o.points_from_to(n(2), n(0)));
        assert!(o.points_from_to(n(2), n(1)));
        assert!(o.points_from_to(n(0), n(1)));
        assert!(o.covers(&g));
    }

    #[test]
    fn directed_edges_enumerates_tail_head_pairs() {
        let mut o = Orientation::new();
        o.set_from_to(n(1), n(0));
        o.set_from_to(n(1), n(2));
        let edges: Vec<(u32, u32)> = o
            .directed_edges()
            .map(|(a, b)| (a.raw(), b.raw()))
            .collect();
        assert_eq!(edges, vec![(1, 0), (1, 2)]);
    }

    #[test]
    fn covers_detects_missing_edges() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2)]).unwrap();
        let mut o = Orientation::new();
        o.set_from_to(n(0), n(1));
        assert!(!o.covers(&g));
        o.set_from_to(n(1), n(2));
        assert!(o.covers(&g));
    }

    #[test]
    fn serde_round_trip() {
        let mut o = Orientation::new();
        o.set_from_to(n(0), n(1));
        o.set_from_to(n(2), n(1));
        let json = serde_json::to_string(&o).unwrap();
        let back: Orientation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, o);
    }
}
