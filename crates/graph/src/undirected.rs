use std::collections::{BTreeMap, BTreeSet, VecDeque};

use serde::{Deserialize, Serialize};

use crate::{GraphError, NodeId};

/// An undirected simple graph `G = (V, E)`.
///
/// This is the fixed communication graph of the system model (§2 of the
/// paper): link-reversal executions never add or remove nodes or edges, they
/// only re-orient the existing edges via an [`Orientation`](crate::Orientation).
///
/// Adjacency is stored in [`BTreeMap`]/[`BTreeSet`] so that all iteration
/// orders are deterministic — important for reproducible executions and
/// model checking.
///
/// ```
/// use lr_graph::{NodeId, UndirectedGraph};
///
/// let mut g = UndirectedGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.add_edge(a, b).unwrap();
/// g.add_edge(b, c).unwrap();
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.degree(b), 2);
/// assert!(g.is_connected());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct UndirectedGraph {
    adj: BTreeMap<NodeId, BTreeSet<NodeId>>,
    next_id: u32,
}

impl UndirectedGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a graph with `n` nodes, identified `0..n`, and no edges.
    pub fn with_nodes(n: usize) -> Self {
        let mut g = Self::new();
        for _ in 0..n {
            g.add_node();
        }
        g
    }

    /// Builds a graph from an edge list, creating nodes as needed.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SelfLoop`] or [`GraphError::DuplicateEdge`] if
    /// the edge list is not a simple graph.
    ///
    /// ```
    /// use lr_graph::UndirectedGraph;
    /// let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (2, 0)]).unwrap();
    /// assert_eq!(g.edge_count(), 3);
    /// ```
    pub fn from_edges(edges: &[(u32, u32)]) -> Result<Self, GraphError> {
        let mut g = Self::new();
        for &(u, v) in edges {
            let (u, v) = (NodeId::new(u), NodeId::new(v));
            g.ensure_node(u);
            g.ensure_node(v);
            g.add_edge(u, v)?;
        }
        Ok(g)
    }

    /// Adds a fresh node and returns its identifier.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId::new(self.next_id);
        self.next_id += 1;
        self.adj.insert(id, BTreeSet::new());
        id
    }

    /// Ensures a node with the given identifier exists.
    pub fn ensure_node(&mut self, id: NodeId) {
        self.adj.entry(id).or_default();
        if id.raw() >= self.next_id {
            self.next_id = id.raw() + 1;
        }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error if `u == v`, either endpoint is unknown, or the edge
    /// already exists.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !self.adj.contains_key(&u) {
            return Err(GraphError::UnknownNode(u));
        }
        if !self.adj.contains_key(&v) {
            return Err(GraphError::UnknownNode(v));
        }
        if self.adj[&u].contains(&v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        self.adj.get_mut(&u).expect("checked").insert(v);
        self.adj.get_mut(&v).expect("checked").insert(u);
        Ok(())
    }

    /// Returns `true` if the node is present.
    pub fn contains_node(&self, u: NodeId) -> bool {
        self.adj.contains_key(&u)
    }

    /// Returns `true` if the edge `{u, v}` is present.
    pub fn contains_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj.get(&u).is_some_and(|s| s.contains(&v))
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        self.adj.values().map(BTreeSet::len).sum::<usize>() / 2
    }

    /// Iterates over all nodes in ascending id order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.keys().copied()
    }

    /// Iterates over all edges as canonical pairs `(u, v)` with `u < v`,
    /// in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adj.iter().flat_map(|(&u, nbrs)| {
            nbrs.iter()
                .copied()
                .filter(move |&v| u < v)
                .map(move |v| (u, v))
        })
    }

    /// The neighbor set `nbrs_u` of a node (empty if the node is unknown).
    pub fn neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.get(&u).into_iter().flatten().copied()
    }

    /// The neighbor set of `u` as a [`BTreeSet`].
    pub fn neighbor_set(&self, u: NodeId) -> BTreeSet<NodeId> {
        self.adj.get(&u).cloned().unwrap_or_default()
    }

    /// Degree of a node (0 if unknown).
    pub fn degree(&self, u: NodeId) -> usize {
        self.adj.get(&u).map_or(0, BTreeSet::len)
    }

    /// Returns `true` if the graph is connected (the empty graph counts as
    /// connected).
    pub fn is_connected(&self) -> bool {
        let Some(&start) = self.adj.keys().next() else {
            return true;
        };
        let mut seen = BTreeSet::new();
        let mut queue = VecDeque::new();
        seen.insert(start);
        queue.push_back(start);
        while let Some(u) = queue.pop_front() {
            for v in self.neighbors(u) {
                if seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        seen.len() == self.adj.len()
    }

    /// Returns the connected component containing `u`.
    pub fn component_of(&self, u: NodeId) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        if !self.contains_node(u) {
            return seen;
        }
        let mut queue = VecDeque::new();
        seen.insert(u);
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            for v in self.neighbors(x) {
                if seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Undirected BFS distance from `u` to `v`, if any path exists.
    pub fn distance(&self, u: NodeId, v: NodeId) -> Option<usize> {
        if !self.contains_node(u) || !self.contains_node(v) {
            return None;
        }
        let mut dist = BTreeMap::new();
        let mut queue = VecDeque::new();
        dist.insert(u, 0usize);
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            let d = dist[&x];
            if x == v {
                return Some(d);
            }
            for w in self.neighbors(x) {
                if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(w) {
                    e.insert(d + 1);
                    queue.push_back(w);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: u32) -> UndirectedGraph {
        let edges: Vec<(u32, u32)> = (0..n.saturating_sub(1)).map(|i| (i, i + 1)).collect();
        UndirectedGraph::from_edges(&edges).unwrap()
    }

    #[test]
    fn empty_graph() {
        let g = UndirectedGraph::new();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert!(g.is_connected());
    }

    #[test]
    fn with_nodes_assigns_contiguous_ids() {
        let g = UndirectedGraph::with_nodes(4);
        let ids: Vec<u32> = g.nodes().map(NodeId::raw).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn add_edge_rejects_self_loop() {
        let mut g = UndirectedGraph::with_nodes(2);
        let a = NodeId::new(0);
        assert_eq!(g.add_edge(a, a), Err(GraphError::SelfLoop(a)));
    }

    #[test]
    fn add_edge_rejects_duplicates_both_orders() {
        let mut g = UndirectedGraph::with_nodes(2);
        let (a, b) = (NodeId::new(0), NodeId::new(1));
        g.add_edge(a, b).unwrap();
        assert_eq!(g.add_edge(a, b), Err(GraphError::DuplicateEdge(a, b)));
        assert_eq!(g.add_edge(b, a), Err(GraphError::DuplicateEdge(b, a)));
    }

    #[test]
    fn add_edge_rejects_unknown_nodes() {
        let mut g = UndirectedGraph::with_nodes(1);
        let (a, x) = (NodeId::new(0), NodeId::new(9));
        assert_eq!(g.add_edge(a, x), Err(GraphError::UnknownNode(x)));
        assert_eq!(g.add_edge(x, a), Err(GraphError::UnknownNode(x)));
    }

    #[test]
    fn edges_are_canonical_and_sorted() {
        let g = UndirectedGraph::from_edges(&[(2, 1), (0, 2), (0, 1)]).unwrap();
        let e: Vec<(u32, u32)> = g.edges().map(|(u, v)| (u.raw(), v.raw())).collect();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2)]);
    }

    #[test]
    fn neighbors_and_degree() {
        let g = path(3);
        let b = NodeId::new(1);
        let nbrs: Vec<u32> = g.neighbors(b).map(NodeId::raw).collect();
        assert_eq!(nbrs, vec![0, 2]);
        assert_eq!(g.degree(b), 2);
        assert_eq!(g.degree(NodeId::new(0)), 1);
        assert_eq!(g.degree(NodeId::new(99)), 0);
    }

    #[test]
    fn connectivity() {
        assert!(path(5).is_connected());
        let mut g = path(3);
        let d = g.add_node();
        assert!(!g.is_connected());
        g.add_edge(NodeId::new(2), d).unwrap();
        assert!(g.is_connected());
    }

    #[test]
    fn component_of_isolated_island() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (2, 3)]).unwrap();
        let comp = g.component_of(NodeId::new(0));
        assert_eq!(comp.len(), 2);
        assert!(comp.contains(&NodeId::new(1)));
        assert!(!comp.contains(&NodeId::new(2)));
    }

    #[test]
    fn bfs_distance() {
        let g = path(5);
        assert_eq!(g.distance(NodeId::new(0), NodeId::new(4)), Some(4));
        assert_eq!(g.distance(NodeId::new(2), NodeId::new(2)), Some(0));
        let g2 = UndirectedGraph::from_edges(&[(0, 1), (2, 3)]).unwrap();
        assert_eq!(g2.distance(NodeId::new(0), NodeId::new(3)), None);
    }

    #[test]
    fn ensure_node_is_idempotent_and_bumps_ids() {
        let mut g = UndirectedGraph::new();
        g.ensure_node(NodeId::new(5));
        g.ensure_node(NodeId::new(5));
        assert_eq!(g.node_count(), 1);
        let fresh = g.add_node();
        assert_eq!(fresh.raw(), 6);
    }

    #[test]
    fn serde_round_trip() {
        let g = path(4);
        let json = serde_json::to_string(&g).unwrap();
        let back: UndirectedGraph = serde_json::from_str(&json).unwrap();
        assert_eq!(back, g);
    }
}
