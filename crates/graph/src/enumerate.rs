//! Exhaustive enumeration of small graphs and orientations, the substrate
//! for the model-checking harness (experiments E1–E6).
//!
//! The paper's invariants are universally quantified over *reachable
//! states* of executions starting from *any* connected graph, *any*
//! acyclic initial orientation, and *any* destination. For small `n`, all
//! of these can be enumerated, turning the paper's induction proofs into
//! finite, machine-checkable statements.

use crate::{DirectedView, NodeId, Orientation, ReversalInstance, UndirectedGraph};

/// Enumerates all labeled connected simple graphs on `n` nodes.
///
/// The number of edge subsets is `2^(n(n-1)/2)`, so this is intended for
/// `n ≤ 6` (`n = 5` gives 1024 subsets; `n = 6` gives 32768).
///
/// # Panics
///
/// Panics if `n == 0` or `n > 7` (guards against accidental explosion).
///
/// ```
/// use lr_graph::enumerate::connected_graphs;
/// // 1, 1, 4, 38, 728 labeled connected graphs on 1..=5 nodes.
/// assert_eq!(connected_graphs(3).len(), 4);
/// assert_eq!(connected_graphs(4).len(), 38);
/// ```
pub fn connected_graphs(n: usize) -> Vec<UndirectedGraph> {
    assert!((1..=7).contains(&n), "connected_graphs is for 1 ≤ n ≤ 7");
    let pairs: Vec<(u32, u32)> = (0..n as u32)
        .flat_map(|i| ((i + 1)..n as u32).map(move |j| (i, j)))
        .collect();
    let m = pairs.len();
    let mut out = Vec::new();
    for mask in 0..(1u64 << m) {
        let mut g = UndirectedGraph::with_nodes(n);
        for (bit, &(i, j)) in pairs.iter().enumerate() {
            if mask >> bit & 1 == 1 {
                g.add_edge(NodeId::new(i), NodeId::new(j)).expect("fresh");
            }
        }
        if g.is_connected() {
            out.push(g);
        }
    }
    out
}

/// Enumerates all acyclic orientations of `graph`.
///
/// Tries all `2^m` direction assignments and keeps the acyclic ones; meant
/// for graphs with at most ~20 edges.
///
/// # Panics
///
/// Panics if the graph has more than 24 edges.
///
/// ```
/// use lr_graph::enumerate::acyclic_orientations;
/// use lr_graph::UndirectedGraph;
/// // A triangle has 6 orientations, 2 of which are cyclic.
/// let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2)]).unwrap();
/// assert_eq!(acyclic_orientations(&g).len(), 6);
/// ```
pub fn acyclic_orientations(graph: &UndirectedGraph) -> Vec<Orientation> {
    let edges: Vec<(NodeId, NodeId)> = graph.edges().collect();
    let m = edges.len();
    assert!(m <= 24, "too many edges for exhaustive orientation");
    let mut out = Vec::new();
    for mask in 0..(1u64 << m) {
        let mut o = Orientation::new();
        for (bit, &(u, v)) in edges.iter().enumerate() {
            if mask >> bit & 1 == 1 {
                o.set_from_to(u, v);
            } else {
                o.set_from_to(v, u);
            }
        }
        if DirectedView::new(graph, &o).is_acyclic() {
            out.push(o);
        }
    }
    out
}

/// Enumerates every [`ReversalInstance`] on `n` nodes: all connected
/// graphs × all acyclic orientations × all destinations.
///
/// This is the full input space of the paper's model for size `n`. The
/// counts grow quickly: `n = 3` yields 66 instances, `n = 4` yields
/// 4,608... use `n ≤ 4` for per-state model checking and `n = 5` only for
/// spot checks.
pub fn all_instances(n: usize) -> Vec<ReversalInstance> {
    let mut out = Vec::new();
    for g in connected_graphs(n) {
        for o in acyclic_orientations(&g) {
            for dest in g.nodes() {
                out.push(
                    ReversalInstance::new(g.clone(), o.clone(), dest)
                        .expect("enumerated instance is valid"),
                );
            }
        }
    }
    out
}

/// Like [`all_instances`] but with a caller-supplied filter on the graph,
/// letting harnesses restrict to e.g. trees or bounded edge counts.
pub fn instances_where<F>(n: usize, mut keep: F) -> Vec<ReversalInstance>
where
    F: FnMut(&UndirectedGraph) -> bool,
{
    let mut out = Vec::new();
    for g in connected_graphs(n) {
        if !keep(&g) {
            continue;
        }
        for o in acyclic_orientations(&g) {
            for dest in g.nodes() {
                out.push(
                    ReversalInstance::new(g.clone(), o.clone(), dest)
                        .expect("enumerated instance is valid"),
                );
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connected_graph_counts_match_oeis_a001187() {
        // OEIS A001187: 1, 1, 1, 4, 38, 728 labeled connected graphs.
        assert_eq!(connected_graphs(1).len(), 1);
        assert_eq!(connected_graphs(2).len(), 1);
        assert_eq!(connected_graphs(3).len(), 4);
        assert_eq!(connected_graphs(4).len(), 38);
    }

    #[test]
    fn acyclic_orientation_count_of_path() {
        // Every orientation of a tree is acyclic: 2^(n-1).
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (2, 3)]).unwrap();
        assert_eq!(acyclic_orientations(&g).len(), 8);
    }

    #[test]
    fn acyclic_orientation_count_of_triangle_and_k4() {
        // Acyclic orientations are counted by |chi(-1)| where chi is the
        // chromatic polynomial: triangle -> 6, K4 -> 24.
        let tri = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(acyclic_orientations(&tri).len(), 6);
        let k4 =
            UndirectedGraph::from_edges(&[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)]).unwrap();
        assert_eq!(acyclic_orientations(&k4).len(), 24);
    }

    #[test]
    fn all_instances_are_valid_and_counted() {
        // n = 3: graphs = {path(012), path(102), path(021), triangle}
        // paths: 4 orientations each... path on 3 nodes has 2 edges -> 4
        // acyclic orientations; triangle has 6. Instances multiply by 3
        // destinations: (3 paths * 4 + 6) * 3 = (12 + 6) * 3 = 54.
        let insts = all_instances(3);
        assert_eq!(insts.len(), 54);
        for inst in &insts {
            assert!(inst.view().is_acyclic());
            assert!(inst.graph.is_connected());
        }
    }

    #[test]
    fn instances_where_filters() {
        // Keep only trees (edge_count == n - 1).
        let trees = instances_where(4, |g| g.edge_count() == 3);
        assert!(!trees.is_empty());
        for t in &trees {
            assert_eq!(t.graph.edge_count(), 3);
        }
    }
}
