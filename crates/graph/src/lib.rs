//! Graph substrate for link-reversal algorithms.
//!
//! This crate provides the structures shared by every other crate in the
//! workspace:
//!
//! * [`UndirectedGraph`] — the fixed communication graph `G = (V, E)` of the
//!   system model (§2 of Radeva & Lynch, *Partial Reversal Acyclicity*).
//!   Nodes and edges are never added or removed during an execution.
//! * [`CsrGraph`] — a flat compressed-sparse-row snapshot of the same
//!   graph with half-edge/twin indexing, built once per instance and used
//!   by the execution engines' hot paths.
//! * [`Orientation`] — a direction assignment for every edge of `G`,
//!   i.e. a directed version `G' = (V, E')`.
//! * [`DirectedView`] — a borrowed directed graph (`G` + `Orientation`) with
//!   the analyses link reversal needs: sinks, acyclicity, topological order,
//!   destination-orientation, reachability.
//! * [`PlaneEmbedding`] — the left-to-right plane embedding of the initial
//!   DAG used by Invariants 4.1 and 4.2 of the paper.
//! * [`ReversalInstance`] — a ready-to-run initial configuration
//!   (graph, initial orientation, destination).
//! * [`generate`] — workload generators: chains, trees, grids, layered DAGs,
//!   random connected DAGs, and the worst-case families used in the
//!   benchmark harness.
//! * [`enumerate`] — exhaustive enumeration of small graphs and of all
//!   acyclic orientations, used by the model-checking harness.
//!
//! # Quick example
//!
//! ```
//! use lr_graph::{generate, NodeId};
//!
//! // A 5-node chain with every edge initially directed away from the
//! // destination: the classic worst case for link reversal.
//! let inst = generate::chain_away(5);
//! let view = inst.view();
//! assert!(view.is_acyclic());
//! assert!(!view.is_destination_oriented(inst.dest));
//! // The far end of the chain is the unique sink.
//! assert_eq!(view.sinks(), vec![NodeId::new(4)]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod csr;
mod directed;
mod embedding;
mod error;
mod instance;
mod node;
mod orientation;
mod undirected;

pub mod dot;
pub mod enumerate;
pub mod generate;
pub mod metrics;
pub mod parse;
pub mod stream;

pub use csr::{check_slot_capacity, CsrBuilder, CsrGraph, MAX_HALF_EDGES};
pub use directed::DirectedView;
pub use embedding::PlaneEmbedding;
pub use error::GraphError;
pub use instance::ReversalInstance;
pub use node::NodeId;
pub use orientation::{EdgeDir, Orientation};
pub use stream::CsrInstance;
pub use undirected::UndirectedGraph;
