//! Compressed-sparse-row view of an [`UndirectedGraph`] — the flat
//! execution-side representation of the communication graph.
//!
//! The [`UndirectedGraph`] frontend stores adjacency in
//! `BTreeMap`/`BTreeSet` for deterministic construction, parsing, and
//! serialization, but every lookup on the run-loop hot path pays a
//! pointer-chasing logarithmic cost. `CsrGraph` is built **once** per
//! instance and never mutated afterwards (executions only re-orient
//! edges, they never change the graph), so all of it fits in three flat
//! arrays:
//!
//! * a sorted node table giving every [`NodeId`] a dense index in
//!   `0..n`;
//! * CSR offsets + neighbor array: the neighbors of node `i` occupy the
//!   contiguous **half-edge slots** `offsets[i]..offsets[i + 1]`, sorted
//!   by neighbor id;
//! * a twin table: the slot of the ordered pair `(u, v)` maps to the
//!   slot of `(v, u)` in O(1), so per-endpoint edge state (the paper's
//!   duplicated `dir[u, v]` variables) can live in one `Vec` indexed by
//!   slot.
//!
//! A slot's *source* (the owning node) is not stored — it is recovered
//! from `offsets` by binary search when needed, and the hot loops avoid
//! even that by iterating per-node slot ranges. All slot indices are
//! `u32`, so the representation costs 8 bytes per half-edge plus 8 bytes
//! per node; construction is checked against the `u32` capacity limit.
//!
//! Iteration orders (nodes ascending, neighbors ascending, edges
//! lexicographic) match the `BTreeMap` frontend exactly, so executions
//! driven through either representation are step-for-step identical.

use crate::{GraphError, NodeId, UndirectedGraph};

/// A compressed-sparse-row snapshot of an [`UndirectedGraph`] with
/// half-edge/twin indexing.
///
/// Each ordered pair of adjacent nodes `(u, v)` owns one **slot** — a
/// flat array index — and [`CsrGraph::twin`] maps the slot of `(u, v)`
/// to the slot of `(v, u)`.
///
/// ```
/// use lr_graph::{CsrGraph, NodeId, UndirectedGraph};
///
/// let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2)]).unwrap();
/// let csr = CsrGraph::from_graph(&g);
/// assert_eq!(csr.node_count(), 3);
/// assert_eq!(csr.half_edge_count(), 4);
/// let one = csr.index_of(NodeId::new(1)).unwrap();
/// assert_eq!(csr.degree(one), 2);
/// for slot in csr.slots(one) {
///     assert_eq!(csr.source(slot), one);
///     assert_eq!(csr.twin(csr.twin(slot)), slot);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// All nodes, ascending; position in this table is the dense index.
    nodes: Vec<NodeId>,
    /// Whether `nodes[i].raw() == i` for all `i` (the common case), which
    /// makes [`CsrGraph::index_of`] O(1) instead of a binary search.
    contiguous: bool,
    /// CSR offsets, length `n + 1`; node `i`'s slots are
    /// `offsets[i]..offsets[i + 1]`.
    offsets: Vec<u32>,
    /// Per-slot target node index, length `2m`.
    targets: Vec<u32>,
    /// Per-slot twin slot (slot of the reversed ordered pair).
    twins: Vec<u32>,
}

/// The maximum number of half-edge slots a [`CsrGraph`] can hold: every
/// slot index (and every offset) is a `u32`.
pub const MAX_HALF_EDGES: usize = u32::MAX as usize;

/// Checks a prospective half-edge count against [`MAX_HALF_EDGES`].
///
/// # Errors
///
/// Returns [`GraphError::SlotCapacity`] if `half_edges` does not fit the
/// `u32` slot-index space.
pub fn check_slot_capacity(half_edges: usize) -> Result<(), GraphError> {
    if half_edges > MAX_HALF_EDGES {
        return Err(GraphError::SlotCapacity(half_edges));
    }
    Ok(())
}

/// Computes the twin table for a sorted, symmetric CSR adjacency in
/// O(n + m): for a fixed node `v`, the slots targeting `v` appear in
/// global slot order exactly when their sources ascend — the same order
/// in which `v`'s own neighbor run lists them — so a single cursor per
/// node pairs every half-edge with its reverse without any searching.
///
/// # Panics
///
/// Panics if the adjacency is not symmetric (some `(u, v)` slot has no
/// `(v, u)` counterpart) — impossible for [`UndirectedGraph`] input,
/// and a generator bug when reached through [`CsrBuilder`].
fn twin_table(offsets: &[u32], targets: &[u32]) -> Vec<u32> {
    let n = offsets.len() - 1;
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut twins = vec![0u32; targets.len()];
    for u in 0..n {
        for slot in offsets[u] as usize..offsets[u + 1] as usize {
            let v = targets[slot] as usize;
            let t = cursor[v];
            cursor[v] += 1;
            twins[slot] = t;
            // `t` must lie in v's slot range and target `u` — then it is
            // the unique slot of (v, u) and the pairing is fully
            // verified.
            assert!(
                t < offsets[v + 1] && targets[t as usize] as usize == u,
                "adjacency is not symmetric: slot {slot} (node {u} -> {v}) has no reverse half-edge"
            );
        }
    }
    twins
}

impl CsrGraph {
    /// Builds the CSR snapshot of `graph` in O(n + m).
    ///
    /// # Panics
    ///
    /// Panics if the graph exceeds [`MAX_HALF_EDGES`] half-edges; use
    /// [`CsrGraph::try_from_graph`] to handle that case as an error.
    pub fn from_graph(graph: &UndirectedGraph) -> Self {
        Self::try_from_graph(graph).expect("graph fits the u32 slot-index capacity")
    }

    /// Builds the CSR snapshot of `graph`, checking the `u32` slot-index
    /// capacity. O(n + m).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SlotCapacity`] if the graph has more than
    /// [`MAX_HALF_EDGES`] half-edges, or [`GraphError::UnknownNode`] if
    /// an adjacency list names a node missing from the node set (which
    /// [`UndirectedGraph`] never produces).
    pub fn try_from_graph(graph: &UndirectedGraph) -> Result<Self, GraphError> {
        check_slot_capacity(2 * graph.edge_count())?;
        let nodes: Vec<NodeId> = graph.nodes().collect();
        let contiguous = nodes.iter().enumerate().all(|(i, u)| u.raw() as usize == i);
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0u32);
        for &u in &nodes {
            for v in graph.neighbors(u) {
                let vi = if contiguous {
                    v.raw()
                } else {
                    nodes
                        .binary_search(&v)
                        .map_err(|_| GraphError::UnknownNode(v))? as u32
                };
                targets.push(vi);
            }
            offsets.push(targets.len() as u32);
        }
        let twins = twin_table(&offsets, &targets);
        Ok(CsrGraph {
            nodes,
            contiguous,
            offsets,
            targets,
            twins,
        })
    }

    /// Builds a contiguous-id CSR directly from prepared offset/target
    /// arrays whose neighbor runs are already strictly ascending — the
    /// scatter-pass back door for streaming generators that cannot emit
    /// node-by-node (layered DAGs, random graphs).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SlotCapacity`] if `targets` exceeds
    /// [`MAX_HALF_EDGES`] entries.
    ///
    /// # Panics
    ///
    /// Panics on malformed arrays (unsorted or out-of-range runs,
    /// asymmetric adjacency) — generator bugs, not runtime conditions.
    pub(crate) fn from_sorted_adjacency(
        offsets: Vec<u32>,
        targets: Vec<u32>,
    ) -> Result<Self, GraphError> {
        check_slot_capacity(targets.len())?;
        let n = offsets.len() - 1;
        assert_eq!(
            *offsets.last().expect("offsets nonempty") as usize,
            targets.len()
        );
        for u in 0..n {
            let run = &targets[offsets[u] as usize..offsets[u + 1] as usize];
            assert!(
                run.windows(2).all(|w| w[0] < w[1]),
                "neighbors of node index {u} must be strictly ascending"
            );
            assert!(
                run.iter().all(|&v| (v as usize) < n && v as usize != u),
                "neighbor run of node index {u} is out of range or self-looping"
            );
        }
        let twins = twin_table(&offsets, &targets);
        Ok(CsrGraph {
            nodes: (0..n as u32).map(NodeId::new).collect(),
            contiguous: true,
            offsets,
            targets,
            twins,
        })
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of half-edge slots (= 2 × edge count).
    pub fn half_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// All nodes in ascending id order (dense-index order).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// The node at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= node_count()`.
    pub fn node(&self, idx: usize) -> NodeId {
        self.nodes[idx]
    }

    /// The dense index of `u`, or `None` if `u` is not a node.
    pub fn index_of(&self, u: NodeId) -> Option<usize> {
        if self.contiguous {
            let i = u.raw() as usize;
            (i < self.nodes.len()).then_some(i)
        } else {
            self.nodes.binary_search(&u).ok()
        }
    }

    /// The dense index of `u`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::UnknownNode`] if `u` is not a node — the
    /// checked counterpart of [`CsrGraph::index_of`] for public
    /// boundaries that want a diagnosable error instead of an `Option`.
    pub fn require_index_of(&self, u: NodeId) -> Result<usize, GraphError> {
        self.index_of(u).ok_or(GraphError::UnknownNode(u))
    }

    /// Degree of the node at dense index `idx`.
    pub fn degree(&self, idx: usize) -> usize {
        (self.offsets[idx + 1] - self.offsets[idx]) as usize
    }

    /// The half-edge slots owned by the node at dense index `idx`.
    pub fn slots(&self, idx: usize) -> std::ops::Range<usize> {
        self.offsets[idx] as usize..self.offsets[idx + 1] as usize
    }

    /// Dense indices of the neighbors of node `idx`, ascending; entry `k`
    /// corresponds to slot `slots(idx).start + k`.
    pub fn neighbor_indices(&self, idx: usize) -> &[u32] {
        &self.targets[self.slots(idx)]
    }

    /// The dense index of the slot's target (the neighbor).
    pub fn target(&self, slot: usize) -> usize {
        self.targets[slot] as usize
    }

    /// The dense index of the slot's source (the owning node), recovered
    /// from the offset table in O(log n). Hot loops should instead
    /// iterate [`CsrGraph::slots`] per node, where the source is the loop
    /// variable.
    pub fn source(&self, slot: usize) -> usize {
        debug_assert!(slot < self.targets.len(), "slot {slot} out of range");
        // Number of offsets ≤ slot, minus one: degree-0 nodes share an
        // offset with their successor, and the predicate being `<=`
        // resolves the tie to the *last* node starting at that offset —
        // the one that actually owns the slot.
        self.offsets.partition_point(|&o| o as usize <= slot) - 1
    }

    /// The slot of the reversed ordered pair: `twin(slot of (u, v))` is
    /// the slot of `(v, u)`.
    pub fn twin(&self, slot: usize) -> usize {
        self.twins[slot] as usize
    }

    /// The slot of the ordered pair `(u, v)` given both dense indices, or
    /// `None` if `{u, v}` is not an edge. O(log Δ).
    pub fn slot_of(&self, u_idx: usize, v_idx: usize) -> Option<usize> {
        let range = self.slots(u_idx);
        let rel = self.targets[range.clone()]
            .binary_search(&(v_idx as u32))
            .ok()?;
        Some(range.start + rel)
    }

    /// Resident size of the CSR arrays in bytes — the representation
    /// cost tracked by the scale benchmarks.
    pub fn resident_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<NodeId>()
            + self.offsets.len() * 4
            + self.targets.len() * 4
            + self.twins.len() * 4
    }
}

/// Streaming CSR construction for generators that know their adjacency
/// without materializing an edge list: nodes are pushed in dense-index
/// order (ids `0..n`, contiguous), each with its ascending neighbor run,
/// and [`CsrBuilder::finish`] derives the twin table in O(n + m).
///
/// ```
/// use lr_graph::CsrBuilder;
///
/// // The 3-node chain 0 — 1 — 2.
/// let mut b = CsrBuilder::with_capacity(3, 4);
/// b.push_node(&[1]);
/// b.push_node(&[0, 2]);
/// b.push_node(&[1]);
/// let csr = b.finish().unwrap();
/// assert_eq!(csr.half_edge_count(), 4);
/// assert_eq!(csr.twin(0), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct CsrBuilder {
    offsets: Vec<u32>,
    targets: Vec<u32>,
    overflow: bool,
}

impl CsrBuilder {
    /// Creates a builder with preallocated space for `nodes` nodes and
    /// `half_edges` half-edge slots.
    pub fn with_capacity(nodes: usize, half_edges: usize) -> Self {
        let mut offsets = Vec::with_capacity(nodes + 1);
        offsets.push(0u32);
        CsrBuilder {
            offsets,
            targets: Vec::with_capacity(half_edges.min(MAX_HALF_EDGES)),
            overflow: false,
        }
    }

    /// Appends the next node (dense index `self.node_count()`) with its
    /// neighbor run, which must be strictly ascending.
    ///
    /// # Panics
    ///
    /// Panics on an out-of-order or self-looping neighbor.
    pub fn push_node(&mut self, neighbors: &[u32]) {
        let me = (self.offsets.len() - 1) as u32;
        let mut prev: Option<u32> = None;
        for &v in neighbors {
            assert_ne!(v, me, "self-loop at node index {me}");
            assert!(
                prev.is_none_or(|p| p < v),
                "neighbors of node index {me} must be strictly ascending"
            );
            prev = Some(v);
            if self.targets.len() >= MAX_HALF_EDGES {
                self.overflow = true;
            } else {
                self.targets.push(v);
            }
        }
        self.offsets.push(self.targets.len() as u32);
    }

    /// Number of nodes pushed so far.
    pub fn node_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of half-edge slots pushed so far.
    pub fn half_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Finalizes the graph: computes the twin table and wraps the arrays
    /// in a contiguous-id [`CsrGraph`].
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::SlotCapacity`] if more than
    /// [`MAX_HALF_EDGES`] half-edges were pushed.
    ///
    /// # Panics
    ///
    /// Panics if a neighbor index is out of range or the adjacency is
    /// not symmetric — generator bugs, not runtime conditions.
    pub fn finish(self) -> Result<CsrGraph, GraphError> {
        if self.overflow {
            return Err(GraphError::SlotCapacity(MAX_HALF_EDGES + 1));
        }
        let n = self.offsets.len() - 1;
        if let Some(&bad) = self.targets.iter().find(|&&v| v as usize >= n) {
            panic!("neighbor index {bad} out of range for {n} nodes");
        }
        let twins = twin_table(&self.offsets, &self.targets);
        Ok(CsrGraph {
            nodes: (0..n as u32).map(NodeId::new).collect(),
            contiguous: true,
            offsets: self.offsets,
            targets: self.targets,
            twins,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn mirrors_btreemap_adjacency_exactly() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.half_edge_count(), 2 * g.edge_count());
        for (i, u) in g.nodes().enumerate() {
            assert_eq!(csr.node(i), u);
            assert_eq!(csr.index_of(u), Some(i));
            assert_eq!(csr.degree(i), g.degree(u));
            let nbrs: Vec<NodeId> = csr
                .neighbor_indices(i)
                .iter()
                .map(|&j| csr.node(j as usize))
                .collect();
            let expected: Vec<NodeId> = g.neighbors(u).collect();
            assert_eq!(nbrs, expected, "neighbor order must match the frontend");
        }
    }

    #[test]
    fn twin_is_an_involution_crossing_the_edge() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2), (1, 3)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        for slot in 0..csr.half_edge_count() {
            let t = csr.twin(slot);
            assert_ne!(t, slot);
            assert_eq!(csr.twin(t), slot, "twin must be an involution");
            assert_eq!(csr.source(t), csr.target(slot));
            assert_eq!(csr.target(t), csr.source(slot));
        }
    }

    #[test]
    fn source_recovers_the_owning_node_for_every_slot() {
        // Includes a degree-0 node (index 3 in 0,1,2,3,4 with edges
        // avoiding 3) so the offset tie-break is exercised.
        let mut g = UndirectedGraph::with_nodes(5);
        g.add_edge(n(0), n(1)).unwrap();
        g.add_edge(n(1), n(2)).unwrap();
        g.add_edge(n(2), n(4)).unwrap();
        let csr = CsrGraph::from_graph(&g);
        for idx in 0..csr.node_count() {
            for slot in csr.slots(idx) {
                assert_eq!(csr.source(slot), idx, "slot {slot}");
            }
        }
    }

    #[test]
    fn slot_of_finds_every_ordered_pair() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        for (u, v) in g.edges() {
            let (ui, vi) = (csr.index_of(u).unwrap(), csr.index_of(v).unwrap());
            let s = csr.slot_of(ui, vi).expect("edge has a slot");
            assert_eq!(csr.source(s), ui);
            assert_eq!(csr.target(s), vi);
            assert_eq!(csr.twin(s), csr.slot_of(vi, ui).unwrap());
        }
        assert_eq!(csr.slot_of(0, 2), None, "{{0, 2}} is not an edge");
    }

    #[test]
    fn non_contiguous_ids_fall_back_to_binary_search() {
        let mut g = UndirectedGraph::new();
        g.ensure_node(n(5));
        g.ensure_node(n(9));
        g.ensure_node(n(200));
        g.add_edge(n(5), n(200)).unwrap();
        g.add_edge(n(9), n(200)).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.index_of(n(5)), Some(0));
        assert_eq!(csr.index_of(n(9)), Some(1));
        assert_eq!(csr.index_of(n(200)), Some(2));
        assert_eq!(csr.index_of(n(6)), None);
        assert_eq!(csr.require_index_of(n(9)), Ok(1));
        assert_eq!(
            csr.require_index_of(n(6)),
            Err(GraphError::UnknownNode(n(6)))
        );
        assert_eq!(csr.degree(2), 2);
        let s = csr.slot_of(0, 2).unwrap();
        assert_eq!(csr.node(csr.target(s)), n(200));
        for idx in 0..csr.node_count() {
            for slot in csr.slots(idx) {
                assert_eq!(csr.source(slot), idx);
            }
        }
    }

    #[test]
    fn isolated_nodes_have_empty_slot_ranges() {
        let mut g = UndirectedGraph::with_nodes(3);
        g.add_edge(n(0), n(1)).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.degree(2), 0);
        assert!(csr.slots(2).is_empty());
        assert!(csr.neighbor_indices(2).is_empty());
    }

    #[test]
    fn builder_matches_from_graph_on_a_small_graph() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let reference = CsrGraph::from_graph(&g);
        let mut b = CsrBuilder::with_capacity(4, 8);
        b.push_node(&[1, 2]);
        b.push_node(&[0, 2]);
        b.push_node(&[0, 1, 3]);
        b.push_node(&[2]);
        assert_eq!(b.node_count(), 4);
        assert_eq!(b.half_edge_count(), 8);
        let built = b.finish().unwrap();
        assert_eq!(built, reference);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn builder_rejects_out_of_order_neighbors() {
        let mut b = CsrBuilder::with_capacity(3, 4);
        b.push_node(&[2, 1]);
    }

    #[test]
    #[should_panic(expected = "not symmetric")]
    fn builder_rejects_asymmetric_adjacency() {
        let mut b = CsrBuilder::with_capacity(2, 2);
        b.push_node(&[1]);
        b.push_node(&[]);
        let _ = b.finish();
    }

    #[test]
    fn capacity_check_rejects_oversized_slot_counts() {
        assert!(check_slot_capacity(MAX_HALF_EDGES).is_ok());
        assert_eq!(
            check_slot_capacity(MAX_HALF_EDGES + 1),
            Err(GraphError::SlotCapacity(MAX_HALF_EDGES + 1))
        );
    }

    #[test]
    fn resident_bytes_counts_the_flat_arrays() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        // 3 nodes × 4 + 4 offsets × 4 + 4 targets × 4 + 4 twins × 4.
        assert_eq!(csr.resident_bytes(), 12 + 16 + 16 + 16);
    }
}
