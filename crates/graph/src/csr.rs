//! Compressed-sparse-row view of an [`UndirectedGraph`] — the flat
//! execution-side representation of the communication graph.
//!
//! The [`UndirectedGraph`] frontend stores adjacency in
//! `BTreeMap`/`BTreeSet` for deterministic construction, parsing, and
//! serialization, but every lookup on the run-loop hot path pays a
//! pointer-chasing logarithmic cost. `CsrGraph` is built **once** per
//! instance and never mutated afterwards (executions only re-orient
//! edges, they never change the graph), so all of it fits in four flat
//! arrays:
//!
//! * a sorted node table giving every [`NodeId`] a dense index in
//!   `0..n`;
//! * CSR offsets + neighbor array: the neighbors of node `i` occupy the
//!   contiguous **half-edge slots** `offsets[i]..offsets[i + 1]`, sorted
//!   by neighbor id;
//! * a twin table: the slot of the ordered pair `(u, v)` maps to the
//!   slot of `(v, u)` in O(1), so per-endpoint edge state (the paper's
//!   duplicated `dir[u, v]` variables) can live in one `Vec` indexed by
//!   slot.
//!
//! Iteration orders (nodes ascending, neighbors ascending, edges
//! lexicographic) match the `BTreeMap` frontend exactly, so executions
//! driven through either representation are step-for-step identical.

use crate::{NodeId, UndirectedGraph};

/// A compressed-sparse-row snapshot of an [`UndirectedGraph`] with
/// half-edge/twin indexing.
///
/// Each ordered pair of adjacent nodes `(u, v)` owns one **slot** — a
/// flat array index — and [`CsrGraph::twin`] maps the slot of `(u, v)`
/// to the slot of `(v, u)`.
///
/// ```
/// use lr_graph::{CsrGraph, NodeId, UndirectedGraph};
///
/// let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2)]).unwrap();
/// let csr = CsrGraph::from_graph(&g);
/// assert_eq!(csr.node_count(), 3);
/// assert_eq!(csr.half_edge_count(), 4);
/// let one = csr.index_of(NodeId::new(1)).unwrap();
/// assert_eq!(csr.degree(one), 2);
/// for slot in csr.slots(one) {
///     assert_eq!(csr.source(slot), one);
///     assert_eq!(csr.twin(csr.twin(slot)), slot);
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrGraph {
    /// All nodes, ascending; position in this table is the dense index.
    nodes: Vec<NodeId>,
    /// Whether `nodes[i].raw() == i` for all `i` (the common case), which
    /// makes [`CsrGraph::index_of`] O(1) instead of a binary search.
    contiguous: bool,
    /// CSR offsets, length `n + 1`; node `i`'s slots are
    /// `offsets[i]..offsets[i + 1]`.
    offsets: Vec<u32>,
    /// Per-slot target node index, length `2m`.
    targets: Vec<u32>,
    /// Per-slot source node index, length `2m`.
    sources: Vec<u32>,
    /// Per-slot twin slot (slot of the reversed ordered pair).
    twins: Vec<u32>,
}

impl CsrGraph {
    /// Builds the CSR snapshot of `graph`. O(n + m) plus one binary
    /// search per half-edge for the twin table.
    pub fn from_graph(graph: &UndirectedGraph) -> Self {
        let nodes: Vec<NodeId> = graph.nodes().collect();
        let contiguous = nodes.iter().enumerate().all(|(i, u)| u.raw() as usize == i);
        let index_of = |u: NodeId| -> u32 {
            if contiguous {
                u.raw()
            } else {
                nodes.binary_search(&u).expect("neighbor is a node") as u32
            }
        };
        let mut offsets = Vec::with_capacity(nodes.len() + 1);
        let mut targets = Vec::with_capacity(2 * graph.edge_count());
        let mut sources = Vec::with_capacity(2 * graph.edge_count());
        offsets.push(0u32);
        for (i, &u) in nodes.iter().enumerate() {
            for v in graph.neighbors(u) {
                targets.push(index_of(v));
                sources.push(i as u32);
            }
            offsets.push(targets.len() as u32);
        }
        let mut twins = vec![0u32; targets.len()];
        for slot in 0..targets.len() {
            let (src, dst) = (sources[slot] as usize, targets[slot] as usize);
            let back = targets[offsets[dst] as usize..offsets[dst + 1] as usize]
                .binary_search(&(src as u32))
                .expect("undirected edge has a reverse half-edge");
            twins[slot] = offsets[dst] + back as u32;
        }
        CsrGraph {
            nodes,
            contiguous,
            offsets,
            targets,
            sources,
            twins,
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Number of half-edge slots (= 2 × edge count).
    pub fn half_edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of undirected edges.
    pub fn edge_count(&self) -> usize {
        self.targets.len() / 2
    }

    /// All nodes in ascending id order (dense-index order).
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().copied()
    }

    /// The node at dense index `idx`.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= node_count()`.
    pub fn node(&self, idx: usize) -> NodeId {
        self.nodes[idx]
    }

    /// The dense index of `u`, or `None` if `u` is not a node.
    pub fn index_of(&self, u: NodeId) -> Option<usize> {
        if self.contiguous {
            let i = u.raw() as usize;
            (i < self.nodes.len()).then_some(i)
        } else {
            self.nodes.binary_search(&u).ok()
        }
    }

    /// Degree of the node at dense index `idx`.
    pub fn degree(&self, idx: usize) -> usize {
        (self.offsets[idx + 1] - self.offsets[idx]) as usize
    }

    /// The half-edge slots owned by the node at dense index `idx`.
    pub fn slots(&self, idx: usize) -> std::ops::Range<usize> {
        self.offsets[idx] as usize..self.offsets[idx + 1] as usize
    }

    /// Dense indices of the neighbors of node `idx`, ascending; entry `k`
    /// corresponds to slot `slots(idx).start + k`.
    pub fn neighbor_indices(&self, idx: usize) -> &[u32] {
        &self.targets[self.slots(idx)]
    }

    /// The dense index of the slot's target (the neighbor).
    pub fn target(&self, slot: usize) -> usize {
        self.targets[slot] as usize
    }

    /// The dense index of the slot's source (the owning node).
    pub fn source(&self, slot: usize) -> usize {
        self.sources[slot] as usize
    }

    /// The slot of the reversed ordered pair: `twin(slot of (u, v))` is
    /// the slot of `(v, u)`.
    pub fn twin(&self, slot: usize) -> usize {
        self.twins[slot] as usize
    }

    /// The slot of the ordered pair `(u, v)` given both dense indices, or
    /// `None` if `{u, v}` is not an edge. O(log Δ).
    pub fn slot_of(&self, u_idx: usize, v_idx: usize) -> Option<usize> {
        let range = self.slots(u_idx);
        let rel = self.targets[range.clone()]
            .binary_search(&(v_idx as u32))
            .ok()?;
        Some(range.start + rel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn mirrors_btreemap_adjacency_exactly() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2), (2, 3)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.node_count(), g.node_count());
        assert_eq!(csr.half_edge_count(), 2 * g.edge_count());
        for (i, u) in g.nodes().enumerate() {
            assert_eq!(csr.node(i), u);
            assert_eq!(csr.index_of(u), Some(i));
            assert_eq!(csr.degree(i), g.degree(u));
            let nbrs: Vec<NodeId> = csr
                .neighbor_indices(i)
                .iter()
                .map(|&j| csr.node(j as usize))
                .collect();
            let expected: Vec<NodeId> = g.neighbors(u).collect();
            assert_eq!(nbrs, expected, "neighbor order must match the frontend");
        }
    }

    #[test]
    fn twin_is_an_involution_crossing_the_edge() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2), (1, 3)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        for slot in 0..csr.half_edge_count() {
            let t = csr.twin(slot);
            assert_ne!(t, slot);
            assert_eq!(csr.twin(t), slot, "twin must be an involution");
            assert_eq!(csr.source(t), csr.target(slot));
            assert_eq!(csr.target(t), csr.source(slot));
        }
    }

    #[test]
    fn slot_of_finds_every_ordered_pair() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2)]).unwrap();
        let csr = CsrGraph::from_graph(&g);
        for (u, v) in g.edges() {
            let (ui, vi) = (csr.index_of(u).unwrap(), csr.index_of(v).unwrap());
            let s = csr.slot_of(ui, vi).expect("edge has a slot");
            assert_eq!(csr.source(s), ui);
            assert_eq!(csr.target(s), vi);
            assert_eq!(csr.twin(s), csr.slot_of(vi, ui).unwrap());
        }
        assert_eq!(csr.slot_of(0, 2), None, "{{0, 2}} is not an edge");
    }

    #[test]
    fn non_contiguous_ids_fall_back_to_binary_search() {
        let mut g = UndirectedGraph::new();
        g.ensure_node(n(5));
        g.ensure_node(n(9));
        g.ensure_node(n(200));
        g.add_edge(n(5), n(200)).unwrap();
        g.add_edge(n(9), n(200)).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.index_of(n(5)), Some(0));
        assert_eq!(csr.index_of(n(9)), Some(1));
        assert_eq!(csr.index_of(n(200)), Some(2));
        assert_eq!(csr.index_of(n(6)), None);
        assert_eq!(csr.degree(2), 2);
        let s = csr.slot_of(0, 2).unwrap();
        assert_eq!(csr.node(csr.target(s)), n(200));
    }

    #[test]
    fn isolated_nodes_have_empty_slot_ranges() {
        let mut g = UndirectedGraph::with_nodes(3);
        g.add_edge(n(0), n(1)).unwrap();
        let csr = CsrGraph::from_graph(&g);
        assert_eq!(csr.degree(2), 0);
        assert!(csr.slots(2).is_empty());
        assert!(csr.neighbor_indices(2).is_empty());
    }
}
