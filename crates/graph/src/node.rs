use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a node in a graph.
///
/// `NodeId` is a lightweight copyable newtype over `u32`. Identifiers are
/// assigned by the caller (generators use `0..n`); the graph types do not
/// require them to be contiguous.
///
/// ```
/// use lr_graph::NodeId;
/// let d = NodeId::new(0);
/// assert_eq!(d.index(), 0);
/// assert_eq!(format!("{d}"), "n0");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u32);

impl NodeId {
    /// Creates a node identifier with the given raw value.
    pub const fn new(id: u32) -> Self {
        NodeId(id)
    }

    /// Returns the raw value as a `usize`, convenient for indexing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw `u32` value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

impl From<NodeId> for u32 {
    fn from(v: NodeId) -> Self {
        v.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let n = NodeId::new(7);
        assert_eq!(n.index(), 7);
        assert_eq!(n.raw(), 7);
        assert_eq!(u32::from(n), 7);
        assert_eq!(NodeId::from(7u32), n);
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(NodeId::new(1) < NodeId::new(2));
        assert_eq!(NodeId::new(3), NodeId::new(3));
    }

    #[test]
    fn display_and_debug() {
        assert_eq!(format!("{}", NodeId::new(5)), "n5");
        assert_eq!(format!("{:?}", NodeId::new(5)), "n5");
    }

    #[test]
    fn serde_round_trip() {
        let n = NodeId::new(42);
        let json = serde_json::to_string(&n).unwrap();
        assert_eq!(json, "42");
        let back: NodeId = serde_json::from_str(&json).unwrap();
        assert_eq!(back, n);
    }
}
