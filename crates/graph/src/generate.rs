//! Workload generators: the graph families used by the examples, tests,
//! and the benchmark harness.
//!
//! Every generator returns a validated [`ReversalInstance`] whose initial
//! orientation is acyclic, matching the model of §2. Unless documented
//! otherwise the destination is node `0`.
//!
//! The **`*_away` families direct every edge away from the destination**,
//! which makes *every* other node a "bad node" (no initial path to `D`) —
//! the configuration that exhibits the Θ(n_b²) worst-case total work cited
//! in §1 of the paper.

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::{NodeId, Orientation, ReversalInstance, UndirectedGraph};

fn ids(n: usize) -> Vec<NodeId> {
    (0..n as u32).map(NodeId::new).collect()
}

/// A chain `D = v0 — v1 — … — v(n-1)` with every edge directed **away**
/// from the destination `v0`.
///
/// Only `v(n-1)` is a sink; reversals ripple back and forth along the
/// chain, producing the classic quadratic worst case.
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// ```
/// use lr_graph::generate;
/// let inst = generate::chain_away(5);
/// assert_eq!(inst.initial_bad_nodes(), 4);
/// ```
pub fn chain_away(n: usize) -> ReversalInstance {
    assert!(n >= 2, "chain needs at least 2 nodes");
    let mut g = UndirectedGraph::with_nodes(n);
    let mut o = Orientation::new();
    for i in 0..n - 1 {
        let (u, v) = (NodeId::new(i as u32), NodeId::new(i as u32 + 1));
        g.add_edge(u, v).expect("fresh edge");
        o.set_from_to(u, v);
    }
    ReversalInstance::new(g, o, NodeId::new(0)).expect("chain is valid")
}

/// A chain with every edge directed **toward** the destination `v0`:
/// already destination-oriented, so no algorithm performs any work on it.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn chain_toward(n: usize) -> ReversalInstance {
    assert!(n >= 2, "chain needs at least 2 nodes");
    let mut g = UndirectedGraph::with_nodes(n);
    let mut o = Orientation::new();
    for i in 0..n - 1 {
        let (u, v) = (NodeId::new(i as u32), NodeId::new(i as u32 + 1));
        g.add_edge(u, v).expect("fresh edge");
        o.set_from_to(v, u);
    }
    ReversalInstance::new(g, o, NodeId::new(0)).expect("chain is valid")
}

/// An *alternating* chain `D = v0 — v1 — … — v(n-1)`: edge `{vi, vi+1}`
/// is directed `vi → vi+1` when `i` is odd and `vi+1 → vi` when `i` is
/// even. Odd-indexed interior nodes are initial sources, even-indexed
/// ones initial sinks — the dense-sink configuration on which Partial
/// Reversal exhibits its Θ(n_b²) worst-case behaviour (FR's worst case is
/// [`chain_away`]; both bounds are cited in §1 of the paper from Busch et
/// al.).
///
/// # Panics
///
/// Panics if `n < 2`.
///
/// ```
/// use lr_graph::generate;
/// let inst = generate::alternating_chain(5);
/// // 1 → 0, 1 → 2, 3 → 2, 3 → 4
/// assert_eq!(inst.view().sinks().len(), 3); // nodes 0 (dest), 2, 4
/// ```
pub fn alternating_chain(n: usize) -> ReversalInstance {
    assert!(n >= 2, "chain needs at least 2 nodes");
    let mut g = UndirectedGraph::with_nodes(n);
    let mut o = Orientation::new();
    for i in 0..n - 1 {
        let (u, v) = (NodeId::new(i as u32), NodeId::new(i as u32 + 1));
        g.add_edge(u, v).expect("fresh edge");
        if i % 2 == 1 {
            o.set_from_to(u, v);
        } else {
            o.set_from_to(v, u);
        }
    }
    ReversalInstance::new(g, o, NodeId::new(0)).expect("chain is valid")
}

/// A star with the destination at the center and every edge directed from
/// the center to the leaves. Every leaf is initially a sink and a bad node.
///
/// # Panics
///
/// Panics if `leaves == 0`.
pub fn star_away(leaves: usize) -> ReversalInstance {
    assert!(leaves >= 1, "star needs at least 1 leaf");
    let mut g = UndirectedGraph::with_nodes(leaves + 1);
    let mut o = Orientation::new();
    let center = NodeId::new(0);
    for i in 1..=leaves {
        let leaf = NodeId::new(i as u32);
        g.add_edge(center, leaf).expect("fresh edge");
        o.set_from_to(center, leaf);
    }
    ReversalInstance::new(g, o, center).expect("star is valid")
}

/// A complete binary tree of the given depth (depth 0 = a single edge pair
/// root with two children) rooted at the destination, every edge directed
/// away from the root.
///
/// # Panics
///
/// Panics if `depth == 0` produces fewer than 2 nodes (i.e. never; depth 0
/// gives 3 nodes).
pub fn binary_tree_away(depth: usize) -> ReversalInstance {
    let levels = depth + 2; // root level + depth more levels
    let n = (1usize << levels) - 1;
    let mut g = UndirectedGraph::with_nodes(n);
    let mut o = Orientation::new();
    for i in 1..n {
        let child = NodeId::new(i as u32);
        let parent = NodeId::new(((i - 1) / 2) as u32);
        g.add_edge(parent, child).expect("fresh edge");
        o.set_from_to(parent, child);
    }
    ReversalInstance::new(g, o, NodeId::new(0)).expect("tree is valid")
}

/// An `rows × cols` grid with edges to the right and down, all directed
/// away from the destination in the top-left corner (row-major order).
///
/// # Panics
///
/// Panics if `rows * cols < 2`.
pub fn grid_away(rows: usize, cols: usize) -> ReversalInstance {
    assert!(rows * cols >= 2, "grid needs at least 2 nodes");
    let id = |r: usize, c: usize| NodeId::new((r * cols + c) as u32);
    let mut g = UndirectedGraph::with_nodes(rows * cols);
    let mut o = Orientation::new();
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1)).expect("fresh edge");
                o.set_from_to(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c)).expect("fresh edge");
                o.set_from_to(id(r, c), id(r + 1, c));
            }
        }
    }
    ReversalInstance::new(g, o, NodeId::new(0)).expect("grid is valid")
}

/// The complete DAG on `n` nodes: every pair connected, oriented from the
/// smaller to the larger id, destination node 0 (so every edge points away
/// from the destination).
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete_away(n: usize) -> ReversalInstance {
    assert!(n >= 2, "complete graph needs at least 2 nodes");
    let mut g = UndirectedGraph::with_nodes(n);
    let mut o = Orientation::new();
    for i in 0..n {
        for j in i + 1..n {
            let (u, v) = (NodeId::new(i as u32), NodeId::new(j as u32));
            g.add_edge(u, v).expect("fresh edge");
            o.set_from_to(u, v);
        }
    }
    ReversalInstance::new(g, o, NodeId::new(0)).expect("complete graph is valid")
}

/// A layered DAG: `depth` layers of `width` nodes plus the destination in
/// its own layer 0. Each node connects to a random non-empty subset of the
/// previous layer (edge probability `p`, at least one forced link for
/// connectivity), all edges directed away from the destination.
///
/// # Panics
///
/// Panics if `width == 0` or `depth == 0`, or if `p` is not in `[0, 1]`.
pub fn layered(width: usize, depth: usize, p: f64, seed: u64) -> ReversalInstance {
    assert!(
        width > 0 && depth > 0,
        "layered graph needs width, depth > 0"
    );
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut rng = SmallRng::seed_from_u64(seed);
    let n = 1 + width * depth;
    let mut g = UndirectedGraph::with_nodes(n);
    let mut o = Orientation::new();
    let node_at = |layer: usize, i: usize| -> NodeId {
        if layer == 0 {
            NodeId::new(0)
        } else {
            NodeId::new((1 + (layer - 1) * width + i) as u32)
        }
    };
    let layer_size = |layer: usize| if layer == 0 { 1 } else { width };
    for layer in 1..=depth {
        for i in 0..width {
            let v = node_at(layer, i);
            let prev = layer - 1;
            let mut linked = false;
            for j in 0..layer_size(prev) {
                if rng.gen_bool(p) {
                    let u = node_at(prev, j);
                    g.add_edge(u, v).expect("fresh edge");
                    o.set_from_to(u, v);
                    linked = true;
                }
            }
            if !linked {
                let j = rng.gen_range(0..layer_size(prev));
                let u = node_at(prev, j);
                g.add_edge(u, v).expect("fresh edge");
                o.set_from_to(u, v);
            }
        }
    }
    ReversalInstance::new(g, o, NodeId::new(0)).expect("layered graph is valid")
}

/// A random connected **bipartite** instance with every edge initially
/// oriented from side A (`0..width`, containing the destination node 0)
/// to side B (`width..2·width`): side B starts as one maximal sink set
/// of `width` pairwise non-adjacent nodes, and a greedy round that steps
/// all of B hands the whole sink set to A — the "ping-pong" family whose
/// rounds stay ~`width` wide for a long prefix of the execution.
///
/// Built for throughput benchmarking of round-parallel executors: wide
/// rounds with tunable degree (each B node gets `degree` distinct A
/// neighbors — one deterministic for connectivity, the rest random).
///
/// # Panics
///
/// Panics if `width < 2` or `degree` is outside `2..=width` (two
/// deterministic edges per B node form the connecting ring).
pub fn bipartite_away(width: usize, degree: usize, seed: u64) -> ReversalInstance {
    assert!(width >= 2, "bipartite sides need at least 2 nodes");
    assert!(
        degree >= 2 && degree <= width,
        "degree must be in 2..=width"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = UndirectedGraph::with_nodes(2 * width);
    let mut o = Orientation::new();
    for i in 0..width {
        let b = NodeId::new((width + i) as u32);
        // Deterministic ring A_i — B_i — A_{i+1}: guarantees
        // connectivity and coverage of both sides regardless of the
        // random draws below.
        for a in [i, (i + 1) % width] {
            let a = NodeId::new(a as u32);
            g.add_edge(a, b).expect("fresh edge");
            o.set_from_to(a, b);
        }
        let mut added = 2;
        let mut attempts = 0;
        while added < degree && attempts < 50 * degree {
            attempts += 1;
            let a = NodeId::new(rng.gen_range(0..width) as u32);
            if !g.contains_edge(a, b) {
                g.add_edge(a, b).expect("checked fresh");
                o.set_from_to(a, b);
                added += 1;
            }
        }
    }
    ReversalInstance::new(g, o, NodeId::new(0)).expect("bipartite instance is valid")
}

/// A random connected graph: a random spanning tree over `n` nodes plus
/// `extra_edges` additional random edges, oriented by a uniformly random
/// topological order. The destination is node 0.
///
/// Some nodes typically have no initial path to the destination, giving
/// the algorithms real work to do.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_connected(n: usize, extra_edges: usize, seed: u64) -> ReversalInstance {
    assert!(n >= 2, "graph needs at least 2 nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = UndirectedGraph::with_nodes(n);
    // Random attachment spanning tree.
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        g.add_edge(NodeId::new(parent as u32), NodeId::new(i as u32))
            .expect("fresh edge");
    }
    // Extra edges, skipping duplicates; cap attempts to stay total.
    let max_edges = n * (n - 1) / 2;
    let target = (n - 1 + extra_edges).min(max_edges);
    let mut attempts = 0;
    while g.edge_count() < target && attempts < 50 * target {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let (u, v) = (NodeId::new(u as u32), NodeId::new(v as u32));
        if !g.contains_edge(u, v) {
            g.add_edge(u, v).expect("checked fresh");
        }
    }
    let mut order = ids(n);
    order.shuffle(&mut rng);
    let o = Orientation::from_order(&g, &order);
    ReversalInstance::new(g, o, NodeId::new(0)).expect("random graph is valid")
}

/// Like [`random_connected`] but with the orientation chosen so that the
/// destination is the **maximum** of the topological order: every edge on
/// the destination is incoming, and typically many nodes already reach it.
pub fn random_connected_oriented_toward(
    n: usize,
    extra_edges: usize,
    seed: u64,
) -> ReversalInstance {
    let base = random_connected(n, extra_edges, seed);
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut order: Vec<NodeId> = base.graph.nodes().filter(|&u| u != base.dest).collect();
    order.shuffle(&mut rng);
    order.push(base.dest);
    let o = Orientation::from_order(&base.graph, &order);
    ReversalInstance::new(base.graph, o, base.dest).expect("valid")
}

/// A uniformly random acyclic orientation of an existing graph (orient by
/// a random permutation of the nodes).
pub fn random_orientation(graph: &UndirectedGraph, seed: u64) -> Orientation {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut order: Vec<NodeId> = graph.nodes().collect();
    order.shuffle(&mut rng);
    Orientation::from_order(graph, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DirectedView;

    #[test]
    fn bipartite_away_has_one_wide_sink_side() {
        let inst = bipartite_away(8, 3, 7);
        assert_eq!(inst.node_count(), 16);
        // Side B (ids 8..16) is exactly the initial sink set.
        let sinks = inst.view().sinks();
        assert_eq!(sinks.len(), 8);
        assert!(sinks.iter().all(|u| u.raw() >= 8));
        // Every B node carries the requested degree.
        for i in 8..16 {
            assert_eq!(inst.graph.degree(NodeId::new(i)), 3);
        }
        // Deterministic per seed.
        let again = bipartite_away(8, 3, 7);
        assert_eq!(inst, again);
    }

    #[test]
    #[should_panic(expected = "degree must be in 2..=width")]
    fn bipartite_away_rejects_sub_ring_degree() {
        let _ = bipartite_away(4, 1, 1);
    }

    #[test]
    fn bipartite_away_is_connected_at_minimum_degree_for_any_seed() {
        // Degree 2 builds exactly the deterministic ring — connectivity
        // must not depend on the random draws.
        for seed in 0..20 {
            let inst = bipartite_away(5, 2, seed);
            assert!(inst.graph.is_connected(), "seed {seed}");
        }
    }

    #[test]
    fn chain_away_all_nodes_bad() {
        let inst = chain_away(6);
        assert_eq!(inst.node_count(), 6);
        assert_eq!(inst.initial_bad_nodes(), 5);
        assert_eq!(inst.view().sinks(), vec![NodeId::new(5)]);
    }

    #[test]
    fn chain_toward_is_destination_oriented() {
        let inst = chain_toward(6);
        assert!(inst.view().is_destination_oriented(inst.dest));
        assert_eq!(inst.initial_bad_nodes(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn chain_requires_two_nodes() {
        let _ = chain_away(1);
    }

    #[test]
    fn star_leaves_are_sinks() {
        let inst = star_away(4);
        assert_eq!(inst.view().sinks().len(), 4);
        assert_eq!(inst.initial_bad_nodes(), 4);
    }

    #[test]
    fn binary_tree_structure() {
        let inst = binary_tree_away(1); // 7 nodes
        assert_eq!(inst.node_count(), 7);
        assert_eq!(inst.graph.edge_count(), 6);
        assert!(inst.view().is_acyclic());
        // Leaves are the 4 deepest nodes, all sinks.
        assert_eq!(inst.view().sinks().len(), 4);
    }

    #[test]
    fn grid_shape_and_acyclicity() {
        let inst = grid_away(3, 4);
        assert_eq!(inst.node_count(), 12);
        // Edges: 3*(4-1) horizontal + (3-1)*4 vertical = 9 + 8 = 17.
        assert_eq!(inst.graph.edge_count(), 17);
        assert!(inst.view().is_acyclic());
        // Bottom-right corner is the unique sink.
        assert_eq!(inst.view().sinks(), vec![NodeId::new(11)]);
    }

    #[test]
    fn complete_away_is_total_order() {
        let inst = complete_away(5);
        assert_eq!(inst.graph.edge_count(), 10);
        assert!(inst.view().is_acyclic());
        assert_eq!(inst.view().sinks(), vec![NodeId::new(4)]);
    }

    #[test]
    fn layered_is_connected_dag() {
        for seed in 0..5 {
            let inst = layered(4, 3, 0.4, seed);
            assert!(inst.graph.is_connected());
            assert!(inst.view().is_acyclic());
            assert_eq!(inst.node_count(), 13);
        }
    }

    #[test]
    fn random_connected_is_valid_and_deterministic() {
        let a = random_connected(20, 15, 7);
        let b = random_connected(20, 15, 7);
        assert_eq!(a, b, "same seed must give the same instance");
        assert!(a.graph.is_connected());
        assert!(a.view().is_acyclic());
        assert!(a.graph.edge_count() >= 19);
        let c = random_connected(20, 15, 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn random_connected_extra_edges_capped_at_complete() {
        let inst = random_connected(4, 1000, 3);
        assert_eq!(inst.graph.edge_count(), 6);
    }

    #[test]
    fn oriented_toward_leaves_destination_as_global_sink_candidate() {
        let inst = random_connected_oriented_toward(15, 10, 11);
        // Every edge at the destination is incoming.
        let view = DirectedView::new(&inst.graph, &inst.init);
        assert_eq!(view.out_degree(inst.dest), 0);
        // The destination is a sink of the initial DAG, so at least its
        // neighbors reach it; typically many more do.
        assert!(view.nodes_reaching(inst.dest).len() > 1);
    }

    #[test]
    fn random_orientation_is_acyclic() {
        let inst = random_connected(12, 20, 5);
        for seed in 0..10 {
            let o = random_orientation(&inst.graph, seed);
            assert!(DirectedView::new(&inst.graph, &o).is_acyclic());
            assert!(o.covers(&inst.graph));
        }
    }
}
