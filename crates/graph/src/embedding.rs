use std::collections::BTreeMap;

use crate::{DirectedView, GraphError, NodeId, Orientation, UndirectedGraph};

/// The left-to-right plane embedding of the *initial* DAG used by the
/// paper's acyclicity proof (§4.2):
///
/// > "Since the input to the PR algorithm is a DAG, we can embed it in a
/// > plane, ensuring all edges are initially directed from left to right.
/// > Therefore, for each node u all edges associated with nodes in
/// > in-nbrs_u are to the left of u, and all nodes associated with edges in
/// > out-nbrs_u are to the right of u."
///
/// The embedding assigns every node an x-coordinate from a topological
/// order of the initial orientation. It is computed **once** from
/// `G'_init` and never changes, exactly like the paper's `in-nbrs`/`out-nbrs`
/// sets. Invariants 4.1 and 4.2 are phrased in terms of this left/right
/// relation.
///
/// ```
/// use lr_graph::{generate, PlaneEmbedding};
///
/// let inst = generate::chain_away(4);
/// let emb = PlaneEmbedding::of_initial(&inst.graph, &inst.init).unwrap();
/// // In chain_away the destination n0 is leftmost and ids increase rightward.
/// for w in [(0, 1), (1, 2), (2, 3)] {
///     assert!(emb.is_left_of(w.0.into(), w.1.into()));
/// }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlaneEmbedding {
    x: BTreeMap<NodeId, usize>,
}

impl PlaneEmbedding {
    /// Computes an embedding from the initial orientation by topological
    /// sort, so that every initially-directed edge points left → right.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::ContainsCycle`] if the initial orientation is
    /// not acyclic (the paper's model requires `G'_init` to be a DAG).
    pub fn of_initial(graph: &UndirectedGraph, init: &Orientation) -> Result<Self, GraphError> {
        let view = DirectedView::new(graph, init);
        let order = view.topological_sort().ok_or(GraphError::ContainsCycle)?;
        let x = order.into_iter().enumerate().map(|(i, u)| (u, i)).collect();
        Ok(PlaneEmbedding { x })
    }

    /// The x-coordinate of a node, or `None` for unknown nodes.
    pub fn x(&self, u: NodeId) -> Option<usize> {
        self.x.get(&u).copied()
    }

    /// Returns `true` if `u` lies strictly to the left of `v`.
    ///
    /// # Panics
    ///
    /// Panics if either node is not part of the embedded graph; the
    /// embedding covers every node of the instance by construction.
    pub fn is_left_of(&self, u: NodeId, v: NodeId) -> bool {
        self.x[&u] < self.x[&v]
    }

    /// Returns `true` if the edge `{u, v}` (under `orientation`) is directed
    /// from left to right in this embedding.
    ///
    /// # Panics
    ///
    /// Panics if the edge is not oriented.
    pub fn left_to_right(&self, orientation: &Orientation, u: NodeId, v: NodeId) -> bool {
        let (l, r) = if self.is_left_of(u, v) {
            (u, v)
        } else {
            (v, u)
        };
        orientation.points_from_to(l, r)
    }

    /// The rightmost node among `nodes`.
    ///
    /// Returns `None` when `nodes` is empty. Used by the Theorem 4.3 cycle
    /// argument ("let v_i be the rightmost node of the cycle").
    pub fn rightmost(&self, nodes: &[NodeId]) -> Option<NodeId> {
        nodes.iter().copied().max_by_key(|&u| self.x[&u])
    }

    /// Number of embedded nodes.
    pub fn len(&self) -> usize {
        self.x.len()
    }

    /// Returns `true` if the embedding is empty.
    pub fn is_empty(&self) -> bool {
        self.x.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn diamond() -> (UndirectedGraph, Orientation) {
        // 0 -> 1 -> 3, 0 -> 2 -> 3
        let g = UndirectedGraph::from_edges(&[(0, 1), (0, 2), (1, 3), (2, 3)]).unwrap();
        let o = Orientation::from_order(&g, &[n(0), n(1), n(2), n(3)]);
        (g, o)
    }

    #[test]
    fn initial_edges_point_left_to_right() {
        let (g, o) = diamond();
        let emb = PlaneEmbedding::of_initial(&g, &o).unwrap();
        for (u, v) in o.directed_edges() {
            assert!(emb.is_left_of(u, v), "{u} should be left of {v}");
            assert!(emb.left_to_right(&o, u, v));
        }
    }

    #[test]
    fn embedding_is_stable_under_reversals() {
        let (g, mut o) = diamond();
        let emb = PlaneEmbedding::of_initial(&g, &o).unwrap();
        o.reverse(n(1), n(3)).unwrap();
        // The embedding does not change; the reversed edge now points
        // right-to-left.
        assert!(!emb.left_to_right(&o, n(1), n(3)));
        assert!(emb.is_left_of(n(1), n(3)));
    }

    #[test]
    fn cyclic_initial_orientation_is_rejected() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut o = Orientation::new();
        o.set_from_to(n(0), n(1));
        o.set_from_to(n(1), n(2));
        o.set_from_to(n(2), n(0));
        assert_eq!(
            PlaneEmbedding::of_initial(&g, &o),
            Err(GraphError::ContainsCycle)
        );
    }

    #[test]
    fn rightmost_of_set() {
        let (g, o) = diamond();
        let emb = PlaneEmbedding::of_initial(&g, &o).unwrap();
        let rm = emb.rightmost(&[n(0), n(3), n(1)]).unwrap();
        assert_eq!(rm, n(3));
        assert_eq!(emb.rightmost(&[]), None);
    }

    #[test]
    fn len_and_is_empty() {
        let (g, o) = diamond();
        let emb = PlaneEmbedding::of_initial(&g, &o).unwrap();
        assert_eq!(emb.len(), 4);
        assert!(!emb.is_empty());
    }
}
