use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::{NodeId, Orientation, UndirectedGraph};

/// A borrowed directed view of an [`UndirectedGraph`] under an
/// [`Orientation`]: the directed graph `G'` of the paper.
///
/// All link-reversal analyses live here: sinks and sources, acyclicity
/// (Kahn's algorithm), topological order, reachability, and the
/// *destination-orientation* property that link-reversal algorithms
/// establish (every node has a directed path to the destination).
///
/// ```
/// use lr_graph::{generate, NodeId};
///
/// let inst = generate::chain_away(4); // D ← everything points away from D
/// let view = inst.view();
/// assert!(view.is_acyclic());
/// assert_eq!(view.sinks(), vec![NodeId::new(3)]);
/// assert!(!view.is_destination_oriented(inst.dest));
/// ```
#[derive(Debug, Clone, Copy)]
pub struct DirectedView<'a> {
    graph: &'a UndirectedGraph,
    orientation: &'a Orientation,
}

impl<'a> DirectedView<'a> {
    /// Creates a view of `graph` directed by `orientation`.
    ///
    /// The orientation is expected to cover every edge of the graph; edges
    /// without an assigned direction are ignored by every query, which the
    /// algorithm crates rely on never happening (their constructors validate
    /// coverage).
    pub fn new(graph: &'a UndirectedGraph, orientation: &'a Orientation) -> Self {
        DirectedView { graph, orientation }
    }

    /// The underlying undirected graph.
    pub fn graph(&self) -> &'a UndirectedGraph {
        self.graph
    }

    /// The orientation.
    pub fn orientation(&self) -> &'a Orientation {
        self.orientation
    }

    /// Out-neighbors of `u` (targets of edges leaving `u`).
    pub fn out_neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.graph
            .neighbors(u)
            .filter(move |&v| self.orientation.points_from_to(u, v))
    }

    /// In-neighbors of `u` (sources of edges entering `u`).
    pub fn in_neighbors(&self, u: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.graph
            .neighbors(u)
            .filter(move |&v| self.orientation.points_from_to(v, u))
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: NodeId) -> usize {
        self.out_neighbors(u).count()
    }

    /// In-degree of `u`.
    pub fn in_degree(&self, u: NodeId) -> usize {
        self.in_neighbors(u).count()
    }

    /// A node is a *sink* when it has at least one incident edge and all of
    /// them are incoming (§1: "all its incident edges are incoming").
    pub fn is_sink(&self, u: NodeId) -> bool {
        self.graph.degree(u) > 0 && self.out_degree(u) == 0
    }

    /// A node is a *source* when it has at least one incident edge and all
    /// of them are outgoing.
    pub fn is_source(&self, u: NodeId) -> bool {
        self.graph.degree(u) > 0 && self.in_degree(u) == 0
    }

    /// All sinks, in ascending node order.
    pub fn sinks(&self) -> Vec<NodeId> {
        self.graph.nodes().filter(|&u| self.is_sink(u)).collect()
    }

    /// All sources, in ascending node order.
    pub fn sources(&self) -> Vec<NodeId> {
        self.graph.nodes().filter(|&u| self.is_source(u)).collect()
    }

    /// A topological order of `G'`, or `None` if it contains a cycle
    /// (Kahn's algorithm).
    pub fn topological_sort(&self) -> Option<Vec<NodeId>> {
        let mut indeg: BTreeMap<NodeId, usize> =
            self.graph.nodes().map(|u| (u, self.in_degree(u))).collect();
        let mut ready: VecDeque<NodeId> = indeg
            .iter()
            .filter(|&(_, &d)| d == 0)
            .map(|(&u, _)| u)
            .collect();
        let mut order = Vec::with_capacity(self.graph.node_count());
        while let Some(u) = ready.pop_front() {
            order.push(u);
            for v in self.out_neighbors(u) {
                let d = indeg.get_mut(&v).expect("node present");
                *d -= 1;
                if *d == 0 {
                    ready.push_back(v);
                }
            }
        }
        (order.len() == self.graph.node_count()).then_some(order)
    }

    /// Returns `true` if `G'` is acyclic — the property Theorem 4.3 / 5.5 of
    /// the paper establishes for every reachable state.
    pub fn is_acyclic(&self) -> bool {
        self.topological_sort().is_some()
    }

    /// Finds a directed cycle, if one exists, as a node sequence
    /// `v0 → v1 → … → vk → v0` (the closing edge is implicit).
    pub fn find_cycle(&self) -> Option<Vec<NodeId>> {
        #[derive(Clone, Copy, PartialEq)]
        enum Mark {
            White,
            Grey,
            Black,
        }
        let mut mark: BTreeMap<NodeId, Mark> =
            self.graph.nodes().map(|u| (u, Mark::White)).collect();
        let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();

        for root in self.graph.nodes() {
            if mark[&root] != Mark::White {
                continue;
            }
            // Iterative DFS with an explicit stack of (node, out-neighbor list).
            let mut stack = vec![(root, self.out_neighbors(root).collect::<Vec<_>>())];
            mark.insert(root, Mark::Grey);
            while let Some((u, nbrs)) = stack.last_mut() {
                if let Some(v) = nbrs.pop() {
                    match mark[&v] {
                        Mark::White => {
                            parent.insert(v, *u);
                            mark.insert(v, Mark::Grey);
                            let next = self.out_neighbors(v).collect::<Vec<_>>();
                            stack.push((v, next));
                        }
                        Mark::Grey => {
                            // Found a back edge u -> v: reconstruct the cycle.
                            let mut cycle = vec![*u];
                            let mut cur = *u;
                            while cur != v {
                                cur = parent[&cur];
                                cycle.push(cur);
                            }
                            cycle.reverse();
                            return Some(cycle);
                        }
                        Mark::Black => {}
                    }
                } else {
                    mark.insert(*u, Mark::Black);
                    stack.pop();
                }
            }
        }
        None
    }

    /// The set of nodes that can reach `dest` along directed edges
    /// (including `dest` itself). Computed by reverse BFS from `dest`.
    pub fn nodes_reaching(&self, dest: NodeId) -> BTreeSet<NodeId> {
        let mut seen = BTreeSet::new();
        if !self.graph.contains_node(dest) {
            return seen;
        }
        let mut queue = VecDeque::new();
        seen.insert(dest);
        queue.push_back(dest);
        while let Some(u) = queue.pop_front() {
            for v in self.in_neighbors(u) {
                if seen.insert(v) {
                    queue.push_back(v);
                }
            }
        }
        seen
    }

    /// Returns `true` if `u` has a directed path to `dest`.
    pub fn can_reach(&self, u: NodeId, dest: NodeId) -> bool {
        self.nodes_reaching(dest).contains(&u)
    }

    /// The goal condition of link reversal: every node has a directed path
    /// to `dest` ("destination-oriented", §1).
    pub fn is_destination_oriented(&self, dest: NodeId) -> bool {
        self.nodes_reaching(dest).len() == self.graph.node_count()
    }

    /// Number of nodes with **no** directed path to `dest` — the `n_b`
    /// ("bad nodes") parameter of the Θ(n_b²) work bound cited in §1.
    pub fn bad_node_count(&self, dest: NodeId) -> usize {
        self.graph.node_count() - self.nodes_reaching(dest).len()
    }

    /// A shortest directed path from `u` to `dest` (inclusive of both
    /// endpoints), if one exists.
    pub fn directed_path(&self, u: NodeId, dest: NodeId) -> Option<Vec<NodeId>> {
        if u == dest {
            return Some(vec![u]);
        }
        // BFS from u along out-edges.
        let mut parent: BTreeMap<NodeId, NodeId> = BTreeMap::new();
        let mut queue = VecDeque::new();
        parent.insert(u, u);
        queue.push_back(u);
        while let Some(x) = queue.pop_front() {
            for v in self.out_neighbors(x) {
                if let std::collections::btree_map::Entry::Vacant(e) = parent.entry(v) {
                    e.insert(x);
                    if v == dest {
                        let mut path = vec![dest];
                        let mut cur = dest;
                        while cur != u {
                            cur = parent[&cur];
                            path.push(cur);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(v);
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Orientation;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    /// 0 → 1 → 2, plus 0 → 2 (a transitive DAG on a triangle).
    fn triangle_dag() -> (UndirectedGraph, Orientation) {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2)]).unwrap();
        let o = Orientation::from_order(&g, &[n(0), n(1), n(2)]);
        (g, o)
    }

    #[test]
    fn out_and_in_neighbors() {
        let (g, o) = triangle_dag();
        let v = DirectedView::new(&g, &o);
        let outs: Vec<u32> = v.out_neighbors(n(0)).map(NodeId::raw).collect();
        assert_eq!(outs, vec![1, 2]);
        let ins: Vec<u32> = v.in_neighbors(n(2)).map(NodeId::raw).collect();
        assert_eq!(ins, vec![0, 1]);
        assert_eq!(v.out_degree(n(2)), 0);
        assert_eq!(v.in_degree(n(0)), 0);
    }

    #[test]
    fn sinks_and_sources() {
        let (g, o) = triangle_dag();
        let v = DirectedView::new(&g, &o);
        assert!(v.is_sink(n(2)));
        assert!(!v.is_sink(n(1)));
        assert!(v.is_source(n(0)));
        assert_eq!(v.sinks(), vec![n(2)]);
        assert_eq!(v.sources(), vec![n(0)]);
    }

    #[test]
    fn isolated_node_is_neither_sink_nor_source() {
        let mut g = UndirectedGraph::with_nodes(1);
        let iso = g.add_node();
        let o = Orientation::new();
        let v = DirectedView::new(&g, &o);
        assert!(!v.is_sink(iso));
        assert!(!v.is_source(iso));
    }

    #[test]
    fn topological_sort_on_dag() {
        let (g, o) = triangle_dag();
        let v = DirectedView::new(&g, &o);
        assert_eq!(v.topological_sort(), Some(vec![n(0), n(1), n(2)]));
        assert!(v.is_acyclic());
        assert_eq!(v.find_cycle(), None);
    }

    #[test]
    fn cycle_is_detected_and_reported() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut o = Orientation::new();
        o.set_from_to(n(0), n(1));
        o.set_from_to(n(1), n(2));
        o.set_from_to(n(2), n(0));
        let v = DirectedView::new(&g, &o);
        assert!(!v.is_acyclic());
        let cycle = v.find_cycle().expect("cycle exists");
        assert_eq!(cycle.len(), 3);
        // Every consecutive pair (cyclically) must be a directed edge.
        for i in 0..cycle.len() {
            let a = cycle[i];
            let b = cycle[(i + 1) % cycle.len()];
            assert!(o.points_from_to(a, b), "{a} -> {b} should be an edge");
        }
    }

    #[test]
    fn destination_orientation() {
        let (g, o) = triangle_dag();
        let v = DirectedView::new(&g, &o);
        // Everything flows toward node 2.
        assert!(v.is_destination_oriented(n(2)));
        assert!(!v.is_destination_oriented(n(0)));
        assert_eq!(v.bad_node_count(n(2)), 0);
        assert_eq!(v.bad_node_count(n(0)), 2);
    }

    #[test]
    fn nodes_reaching_reverse_bfs() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (3, 2)]).unwrap();
        let mut o = Orientation::new();
        o.set_from_to(n(0), n(1));
        o.set_from_to(n(1), n(2));
        o.set_from_to(n(2), n(3));
        let v = DirectedView::new(&g, &o);
        let r = v.nodes_reaching(n(2));
        assert!(r.contains(&n(0)) && r.contains(&n(1)) && r.contains(&n(2)));
        assert!(!r.contains(&n(3)));
    }

    #[test]
    fn directed_path_extraction() {
        let (g, o) = triangle_dag();
        let v = DirectedView::new(&g, &o);
        let p = v.directed_path(n(0), n(2)).unwrap();
        assert_eq!(p.first(), Some(&n(0)));
        assert_eq!(p.last(), Some(&n(2)));
        // Each hop must follow a directed edge.
        for w in p.windows(2) {
            assert!(o.points_from_to(w[0], w[1]));
        }
        assert_eq!(v.directed_path(n(2), n(0)), None);
        assert_eq!(v.directed_path(n(1), n(1)), Some(vec![n(1)]));
    }
}
