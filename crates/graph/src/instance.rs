use serde::{Deserialize, Serialize};

use crate::{DirectedView, GraphError, NodeId, Orientation, PlaneEmbedding, UndirectedGraph};

/// A ready-to-run link-reversal problem instance: the undirected graph `G`,
/// the initial acyclic orientation `G'_init`, and the destination node `D`.
///
/// This bundles exactly the inputs assumed by §2 of the paper. All
/// algorithm states are constructed from a `ReversalInstance`, and the
/// instance itself never changes during an execution.
///
/// ```
/// use lr_graph::{NodeId, Orientation, ReversalInstance, UndirectedGraph};
///
/// let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2)]).unwrap();
/// let o = Orientation::from_order(&g, &[NodeId::new(0), NodeId::new(1), NodeId::new(2)]);
/// let inst = ReversalInstance::new(g, o, NodeId::new(0)).unwrap();
/// assert_eq!(inst.dest, NodeId::new(0));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReversalInstance {
    /// The fixed undirected communication graph `G`.
    pub graph: UndirectedGraph,
    /// The initial orientation `G'_init` (must be acyclic).
    pub init: Orientation,
    /// The destination node `D`, which never takes steps.
    pub dest: NodeId,
}

impl ReversalInstance {
    /// Validates and creates an instance.
    ///
    /// # Errors
    ///
    /// * [`GraphError::UnknownNode`] — `dest` is not a node of `graph`.
    /// * [`GraphError::UnknownEdge`] — `init` does not orient every edge.
    /// * [`GraphError::ContainsCycle`] — `init` is not acyclic.
    /// * [`GraphError::Disconnected`] — `graph` is not connected (required
    ///   for termination in a destination-oriented state).
    pub fn new(
        graph: UndirectedGraph,
        init: Orientation,
        dest: NodeId,
    ) -> Result<Self, GraphError> {
        if !graph.contains_node(dest) {
            return Err(GraphError::UnknownNode(dest));
        }
        if !init.covers(&graph) {
            // Report the first uncovered edge for a useful message.
            let missing = graph
                .edges()
                .find(|&(u, v)| init.dir(u, v).is_none())
                .expect("covers() failed so an edge is missing");
            return Err(GraphError::UnknownEdge(missing.0, missing.1));
        }
        if !graph.is_connected() {
            return Err(GraphError::Disconnected);
        }
        if !DirectedView::new(&graph, &init).is_acyclic() {
            return Err(GraphError::ContainsCycle);
        }
        Ok(ReversalInstance { graph, init, dest })
    }

    /// A directed view of the **initial** orientation.
    pub fn view(&self) -> DirectedView<'_> {
        DirectedView::new(&self.graph, &self.init)
    }

    /// The plane embedding of the initial DAG (§4.2), used by Invariants
    /// 4.1/4.2.
    ///
    /// Always succeeds because the constructor validated acyclicity.
    pub fn embedding(&self) -> PlaneEmbedding {
        PlaneEmbedding::of_initial(&self.graph, &self.init)
            .expect("instance constructor validated acyclicity")
    }

    /// The initial in-neighbors `in-nbrs_u` of a node (fixed for the whole
    /// execution, per §2).
    pub fn initial_in_nbrs(&self, u: NodeId) -> Vec<NodeId> {
        self.view().in_neighbors(u).collect()
    }

    /// The initial out-neighbors `out-nbrs_u` of a node.
    pub fn initial_out_nbrs(&self, u: NodeId) -> Vec<NodeId> {
        self.view().out_neighbors(u).collect()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.graph.node_count()
    }

    /// Nodes that initially have no directed path to the destination
    /// (`n_b`, the "bad node" count of the Θ(n_b²) bound).
    pub fn initial_bad_nodes(&self) -> usize {
        self.view().bad_node_count(self.dest)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn valid_instance() -> ReversalInstance {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2)]).unwrap();
        let o = Orientation::from_order(&g, &[n(0), n(1), n(2)]);
        ReversalInstance::new(g, o, n(2)).unwrap()
    }

    #[test]
    fn valid_instance_constructs() {
        let inst = valid_instance();
        assert_eq!(inst.node_count(), 3);
        assert_eq!(inst.initial_bad_nodes(), 0);
    }

    #[test]
    fn unknown_destination_is_rejected() {
        let g = UndirectedGraph::from_edges(&[(0, 1)]).unwrap();
        let o = Orientation::from_order(&g, &[n(0), n(1)]);
        assert_eq!(
            ReversalInstance::new(g, o, n(9)),
            Err(GraphError::UnknownNode(n(9)))
        );
    }

    #[test]
    fn partial_orientation_is_rejected() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2)]).unwrap();
        let mut o = Orientation::new();
        o.set_from_to(n(0), n(1));
        assert_eq!(
            ReversalInstance::new(g, o, n(0)),
            Err(GraphError::UnknownEdge(n(1), n(2)))
        );
    }

    #[test]
    fn cyclic_initial_orientation_is_rejected() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (0, 2)]).unwrap();
        let mut o = Orientation::new();
        o.set_from_to(n(0), n(1));
        o.set_from_to(n(1), n(2));
        o.set_from_to(n(2), n(0));
        assert_eq!(
            ReversalInstance::new(g, o, n(0)),
            Err(GraphError::ContainsCycle)
        );
    }

    #[test]
    fn disconnected_graph_is_rejected() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (2, 3)]).unwrap();
        let mut o = Orientation::new();
        o.set_from_to(n(0), n(1));
        o.set_from_to(n(2), n(3));
        assert_eq!(
            ReversalInstance::new(g, o, n(0)),
            Err(GraphError::Disconnected)
        );
    }

    #[test]
    fn initial_neighbor_sets() {
        let inst = valid_instance();
        assert_eq!(inst.initial_in_nbrs(n(2)), vec![n(0), n(1)]);
        assert_eq!(inst.initial_out_nbrs(n(0)), vec![n(1), n(2)]);
        assert_eq!(inst.initial_in_nbrs(n(0)), vec![]);
    }

    #[test]
    fn bad_node_count_counts_unreachable() {
        // 0 <- 1 <- 2 with dest 2: everything points AWAY from 2's
        // perspective... orient 1->0, 2->1 and pick dest 0: all reach 0.
        let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2)]).unwrap();
        let mut o = Orientation::new();
        o.set_from_to(n(1), n(0));
        o.set_from_to(n(2), n(1));
        let inst = ReversalInstance::new(g.clone(), o.clone(), n(0)).unwrap();
        assert_eq!(inst.initial_bad_nodes(), 0);
        // Same orientation, dest 2: nodes 0 and 1 cannot reach it.
        let inst2 = ReversalInstance::new(g, o, n(2)).unwrap();
        assert_eq!(inst2.initial_bad_nodes(), 2);
    }

    #[test]
    fn serde_round_trip() {
        let inst = valid_instance();
        let json = serde_json::to_string(&inst).unwrap();
        let back: ReversalInstance = serde_json::from_str(&json).unwrap();
        assert_eq!(back, inst);
    }
}
