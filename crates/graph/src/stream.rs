//! Streaming instance construction: generators that emit neighbor runs
//! directly into CSR arrays, never materializing a `BTreeMap` graph or
//! an intermediate edge list.
//!
//! The [`crate::generate`] module builds [`ReversalInstance`]s through the
//! `UndirectedGraph`/`Orientation` frontend — ideal for validation and
//! serialization, but its pointer-heavy maps cost hundreds of bytes per
//! edge, which caps it at tens of thousands of nodes. The streaming
//! counterparts in this module produce a [`CsrInstance`] — the flat CSR
//! graph plus a bit-packed initial orientation (1 bit per half-edge) —
//! at roughly 8 bytes per half-edge plus 8 per node, so million-node
//! instances fit comfortably in memory.
//!
//! Every streaming generator is pinned to its materializing counterpart
//! by the differential suite: `stream::f(args)` must equal
//! `CsrInstance::from_instance(&generate::f(args))` bit for bit,
//! including the RNG draws of the random families.

use std::collections::HashSet;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::csr::check_slot_capacity;
use crate::{CsrBuilder, CsrGraph, EdgeDir, NodeId, ReversalInstance};

/// Reads bit `i` of a packed word array.
fn bit_get(words: &[u64], i: usize) -> bool {
    (words[i >> 6] >> (i & 63)) & 1 == 1
}

/// Sets bit `i` of a packed word array.
fn bit_set(words: &mut [u64], i: usize) {
    words[i >> 6] |= 1u64 << (i & 63);
}

/// A flat, memory-lean problem instance: the CSR communication graph,
/// the initial orientation packed to one bit per half-edge slot (bit set
/// ⟺ the slot's edge points **out** of the owning node), and the
/// destination.
///
/// This is the large-scale counterpart of [`ReversalInstance`]; the two
/// are interconvertible via [`CsrInstance::from_instance`], and a
/// streaming generator's output equals the conversion of its
/// materializing twin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CsrInstance {
    csr: Arc<CsrGraph>,
    init_out: Vec<u64>,
    dest: NodeId,
}

impl CsrInstance {
    /// Converts a materialized instance to the flat representation.
    pub fn from_instance(inst: &ReversalInstance) -> Self {
        let csr = Arc::new(CsrGraph::from_graph(&inst.graph));
        let mut init_out = vec![0u64; csr.half_edge_count().div_ceil(64)];
        for ui in 0..csr.node_count() {
            let u = csr.node(ui);
            for slot in csr.slots(ui) {
                let v = csr.node(csr.target(slot));
                if inst.init.dir(u, v) == Some(EdgeDir::Out) {
                    bit_set(&mut init_out, slot);
                }
            }
        }
        CsrInstance {
            csr,
            init_out,
            dest: inst.dest,
        }
    }

    /// The CSR graph.
    pub fn csr(&self) -> &Arc<CsrGraph> {
        &self.csr
    }

    /// The destination node.
    pub fn dest(&self) -> NodeId {
        self.dest
    }

    /// The destination's dense index.
    pub fn dest_index(&self) -> usize {
        self.csr
            .index_of(self.dest)
            .expect("destination is a node of the instance")
    }

    /// The initial direction of a half-edge slot from its owner's
    /// perspective.
    pub fn init_dir_at(&self, slot: usize) -> EdgeDir {
        if bit_get(&self.init_out, slot) {
            EdgeDir::Out
        } else {
            EdgeDir::In
        }
    }

    /// The packed initial-orientation words (bit set ⟺ slot is out).
    pub fn init_out_words(&self) -> &[u64] {
        &self.init_out
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.csr.node_count()
    }

    /// Number of half-edge slots.
    pub fn half_edge_count(&self) -> usize {
        self.csr.half_edge_count()
    }

    /// Resident size of the instance in bytes: the CSR arrays plus the
    /// packed orientation words.
    pub fn resident_bytes(&self) -> usize {
        self.csr.resident_bytes() + self.init_out.len() * 8
    }
}

/// Internal accumulator pairing a [`CsrBuilder`] with the packed
/// orientation bits of the slots as they are emitted.
struct InstanceBuilder {
    b: CsrBuilder,
    init_out: Vec<u64>,
}

impl InstanceBuilder {
    fn with_capacity(nodes: usize, half_edges: usize) -> Self {
        InstanceBuilder {
            b: CsrBuilder::with_capacity(nodes, half_edges),
            init_out: Vec::with_capacity(half_edges.div_ceil(64)),
        }
    }

    /// Pushes the next node's ascending neighbor run; `out[k]` gives the
    /// initial direction of the slot for `neighbors[k]`.
    fn push_node(&mut self, neighbors: &[u32], out: &[bool]) {
        debug_assert_eq!(neighbors.len(), out.len());
        let base = self.b.half_edge_count();
        self.init_out
            .resize((base + neighbors.len()).div_ceil(64), 0);
        for (k, &o) in out.iter().enumerate() {
            if o {
                bit_set(&mut self.init_out, base + k);
            }
        }
        self.b.push_node(neighbors);
    }

    fn finish(self, dest: NodeId) -> CsrInstance {
        let csr = self
            .b
            .finish()
            .expect("streaming generators check capacity up front");
        CsrInstance {
            csr: Arc::new(csr),
            init_out: self.init_out,
            dest,
        }
    }
}

/// Asserts the half-edge count of a family fits the slot-index space
/// before any allocation happens.
///
/// # Panics
///
/// Panics with the [`crate::GraphError::SlotCapacity`] message on
/// overflow — generators are infallible APIs, mirroring the panicking
/// contracts of [`crate::generate`].
fn assert_capacity(half_edges: usize) {
    if let Err(e) = check_slot_capacity(half_edges) {
        panic!("{e}");
    }
}

/// Streaming [`crate::generate::chain_away`]: the chain `D = v0 — … — v(n-1)`
/// with every edge directed away from destination `v0`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn chain_away(n: usize) -> CsrInstance {
    assert!(n >= 2, "chain needs at least 2 nodes");
    assert_capacity(2 * (n - 1));
    let mut ib = InstanceBuilder::with_capacity(n, 2 * (n - 1));
    for i in 0..n as u32 {
        if i == 0 {
            ib.push_node(&[1], &[true]);
        } else if i as usize == n - 1 {
            ib.push_node(&[i - 1], &[false]);
        } else {
            ib.push_node(&[i - 1, i + 1], &[false, true]);
        }
    }
    ib.finish(NodeId::new(0))
}

/// Streaming [`crate::generate::chain_toward`]: the chain with every edge
/// directed toward destination `v0`.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn chain_toward(n: usize) -> CsrInstance {
    assert!(n >= 2, "chain needs at least 2 nodes");
    assert_capacity(2 * (n - 1));
    let mut ib = InstanceBuilder::with_capacity(n, 2 * (n - 1));
    for i in 0..n as u32 {
        if i == 0 {
            ib.push_node(&[1], &[false]);
        } else if i as usize == n - 1 {
            ib.push_node(&[i - 1], &[true]);
        } else {
            ib.push_node(&[i - 1, i + 1], &[true, false]);
        }
    }
    ib.finish(NodeId::new(0))
}

/// Streaming [`crate::generate::alternating_chain`]: edge `{vi, vi+1}` directed
/// `vi → vi+1` when `i` is odd, `vi+1 → vi` when `i` is even.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn alternating_chain(n: usize) -> CsrInstance {
    assert!(n >= 2, "chain needs at least 2 nodes");
    assert_capacity(2 * (n - 1));
    let mut ib = InstanceBuilder::with_capacity(n, 2 * (n - 1));
    // Edge i—i+1 points i → i+1 iff i is odd, so from node k's
    // perspective: the left edge (index k-1) is In iff k-1 is odd, and
    // the right edge (index k) is Out iff k is odd.
    let left_out = |k: u32| (k - 1).is_multiple_of(2);
    let right_out = |k: u32| k % 2 == 1;
    for k in 0..n as u32 {
        if k == 0 {
            ib.push_node(&[1], &[right_out(0)]);
        } else if k as usize == n - 1 {
            ib.push_node(&[k - 1], &[left_out(k)]);
        } else {
            ib.push_node(&[k - 1, k + 1], &[left_out(k), right_out(k)]);
        }
    }
    ib.finish(NodeId::new(0))
}

/// Streaming [`crate::generate::star_away`]: destination at the center, every
/// edge directed center → leaf.
///
/// # Panics
///
/// Panics if `leaves == 0`.
pub fn star_away(leaves: usize) -> CsrInstance {
    assert!(leaves >= 1, "star needs at least 1 leaf");
    assert_capacity(2 * leaves);
    let mut ib = InstanceBuilder::with_capacity(leaves + 1, 2 * leaves);
    let nbrs: Vec<u32> = (1..=leaves as u32).collect();
    let out = vec![true; leaves];
    ib.push_node(&nbrs, &out);
    for _ in 1..=leaves {
        ib.push_node(&[0], &[false]);
    }
    ib.finish(NodeId::new(0))
}

/// Streaming [`crate::generate::binary_tree_away`]: a complete binary tree
/// rooted at the destination, every edge directed away from the root.
pub fn binary_tree_away(depth: usize) -> CsrInstance {
    let levels = depth + 2;
    let n = (1usize << levels) - 1;
    assert_capacity(2 * (n - 1));
    let mut ib = InstanceBuilder::with_capacity(n, 2 * (n - 1));
    let mut nbrs: Vec<u32> = Vec::with_capacity(3);
    let mut out: Vec<bool> = Vec::with_capacity(3);
    for i in 0..n {
        nbrs.clear();
        out.clear();
        if i > 0 {
            nbrs.push(((i - 1) / 2) as u32);
            out.push(false);
        }
        for child in [2 * i + 1, 2 * i + 2] {
            if child < n {
                nbrs.push(child as u32);
                out.push(true);
            }
        }
        ib.push_node(&nbrs, &out);
    }
    ib.finish(NodeId::new(0))
}

/// Streaming [`crate::generate::grid_away`]: an `rows × cols` grid (row-major
/// ids) with right and down edges, all directed away from the
/// destination in the top-left corner.
///
/// # Panics
///
/// Panics if `rows * cols < 2`.
pub fn grid_away(rows: usize, cols: usize) -> CsrInstance {
    assert!(rows * cols >= 2, "grid needs at least 2 nodes");
    let half_edges = 2 * (rows * (cols - 1) + (rows - 1) * cols);
    assert_capacity(half_edges);
    let mut ib = InstanceBuilder::with_capacity(rows * cols, half_edges);
    let mut nbrs: Vec<u32> = Vec::with_capacity(4);
    let mut out: Vec<bool> = Vec::with_capacity(4);
    for r in 0..rows {
        for c in 0..cols {
            let me = r * cols + c;
            nbrs.clear();
            out.clear();
            // Ascending neighbor ids: up, left, right, down. Edges
            // point right and down, so up/left are In, right/down Out.
            if r > 0 {
                nbrs.push((me - cols) as u32);
                out.push(false);
            }
            if c > 0 {
                nbrs.push((me - 1) as u32);
                out.push(false);
            }
            if c + 1 < cols {
                nbrs.push((me + 1) as u32);
                out.push(true);
            }
            if r + 1 < rows {
                nbrs.push((me + cols) as u32);
                out.push(true);
            }
            ib.push_node(&nbrs, &out);
        }
    }
    ib.finish(NodeId::new(0))
}

/// Streaming [`crate::generate::complete_away`]: the complete DAG oriented from
/// smaller to larger id, destination node 0.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn complete_away(n: usize) -> CsrInstance {
    assert!(n >= 2, "complete graph needs at least 2 nodes");
    assert_capacity(n * (n - 1));
    let mut ib = InstanceBuilder::with_capacity(n, n * (n - 1));
    let mut nbrs: Vec<u32> = Vec::with_capacity(n - 1);
    let mut out: Vec<bool> = Vec::with_capacity(n - 1);
    for i in 0..n as u32 {
        nbrs.clear();
        out.clear();
        for j in 0..n as u32 {
            if j != i {
                nbrs.push(j);
                out.push(j > i);
            }
        }
        ib.push_node(&nbrs, &out);
    }
    ib.finish(NodeId::new(0))
}

/// Streaming [`crate::generate::layered`]: `depth` layers of `width` nodes over
/// the destination, every node wired to a random non-empty subset of the
/// previous layer, all edges directed away from the destination.
///
/// Runs the RNG twice with the same seed — one pass to count degrees,
/// one to scatter the edges — so the draws match the materializing
/// generator exactly.
///
/// # Panics
///
/// Panics if `width == 0` or `depth == 0`, or if `p` is not in `[0, 1]`.
pub fn layered(width: usize, depth: usize, p: f64, seed: u64) -> CsrInstance {
    assert!(
        width > 0 && depth > 0,
        "layered graph needs width, depth > 0"
    );
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let n = 1 + width * depth;
    // Replays the frontend's generation loop, feeding each `u → v` edge
    // (with `u` in the earlier layer) to `sink` in draw order.
    fn emit_edges<F: FnMut(usize, usize)>(
        width: usize,
        depth: usize,
        p: f64,
        seed: u64,
        mut sink: F,
    ) {
        let node_at = |layer: usize, i: usize| -> usize {
            if layer == 0 {
                0
            } else {
                1 + (layer - 1) * width + i
            }
        };
        let layer_size = |layer: usize| if layer == 0 { 1 } else { width };
        let mut rng = SmallRng::seed_from_u64(seed);
        for layer in 1..=depth {
            for i in 0..width {
                let v = node_at(layer, i);
                let prev = layer - 1;
                let mut linked = false;
                for j in 0..layer_size(prev) {
                    if rng.gen_bool(p) {
                        sink(node_at(prev, j), v);
                        linked = true;
                    }
                }
                if !linked {
                    let j = rng.gen_range(0..layer_size(prev));
                    sink(node_at(prev, j), v);
                }
            }
        }
    }
    // Pass 1: count degrees only.
    let mut deg = vec![0u32; n];
    emit_edges(width, depth, p, seed, |u, v| {
        deg[u] += 1;
        deg[v] += 1;
    });
    let half_edges: usize = deg.iter().map(|&d| d as usize).sum();
    assert_capacity(half_edges);
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    offsets.push(0u32);
    for &d in &deg {
        acc += d;
        offsets.push(acc);
    }
    // Pass 2: replay again, scattering each edge into both endpoints'
    // runs. Generation order visits a node's lower neighbors ascending
    // (j ascending over the previous layer) before any of its upper
    // neighbors (i ascending over the next layer), so the scattered
    // runs come out sorted without a sort pass.
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut targets = vec![0u32; half_edges];
    let mut init_out = vec![0u64; half_edges.div_ceil(64)];
    emit_edges(width, depth, p, seed, |u, v| {
        // u is in the earlier layer: the edge points u → v.
        let su = cursor[u] as usize;
        targets[su] = v as u32;
        bit_set(&mut init_out, su);
        cursor[u] += 1;
        let sv = cursor[v] as usize;
        targets[sv] = u as u32;
        cursor[v] += 1;
    });
    let csr = CsrGraph::from_sorted_adjacency(offsets, targets)
        .expect("capacity checked before allocation");
    CsrInstance {
        csr: Arc::new(csr),
        init_out,
        dest: NodeId::new(0),
    }
}

/// Streaming [`crate::generate::random_connected`]: a random attachment
/// spanning tree plus `extra_edges` random edges, oriented by a random
/// topological order, destination node 0.
///
/// Keeps only a flat `(u, v)` edge buffer and a hash set for the
/// duplicate checks while generating — both freed before the instance
/// is returned — instead of the frontend's per-node B-tree adjacency.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn random_connected(n: usize, extra_edges: usize, seed: u64) -> CsrInstance {
    assert!(n >= 2, "graph needs at least 2 nodes");
    let mut rng = SmallRng::seed_from_u64(seed);
    let max_edges = n * (n - 1) / 2;
    let target = (n - 1 + extra_edges).min(max_edges);
    assert_capacity(2 * target);
    let mut edges: Vec<(u32, u32)> = Vec::with_capacity(target);
    let mut seen: HashSet<(u32, u32)> = HashSet::with_capacity(target);
    // Random attachment spanning tree — same draws as the frontend.
    for i in 1..n {
        let parent = rng.gen_range(0..i);
        let key = (parent as u32, i as u32);
        edges.push(key);
        seen.insert(key);
    }
    // Extra edges, skipping duplicates; cap attempts to stay total.
    let mut attempts = 0;
    while edges.len() < target && attempts < 50 * target {
        attempts += 1;
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v) as u32, u.max(v) as u32);
        if seen.insert(key) {
            edges.push(key);
        }
    }
    drop(seen);
    let mut order: Vec<NodeId> = (0..n as u32).map(NodeId::new).collect();
    order.shuffle(&mut rng);
    let mut rank = vec![0u32; n];
    for (pos, &u) in order.iter().enumerate() {
        rank[u.index()] = pos as u32;
    }
    drop(order);
    // Counting-scatter the edge buffer into CSR runs, then sort each
    // run (edge order is random, unlike the layered family).
    let mut deg = vec![0u32; n];
    for &(a, b) in &edges {
        deg[a as usize] += 1;
        deg[b as usize] += 1;
    }
    let half_edges = 2 * edges.len();
    let mut offsets = Vec::with_capacity(n + 1);
    let mut acc = 0u32;
    offsets.push(0u32);
    for &d in &deg {
        acc += d;
        offsets.push(acc);
    }
    drop(deg);
    let mut cursor: Vec<u32> = offsets[..n].to_vec();
    let mut targets = vec![0u32; half_edges];
    for &(a, b) in &edges {
        targets[cursor[a as usize] as usize] = b;
        cursor[a as usize] += 1;
        targets[cursor[b as usize] as usize] = a;
        cursor[b as usize] += 1;
    }
    drop(edges);
    drop(cursor);
    for u in 0..n {
        targets[offsets[u] as usize..offsets[u + 1] as usize].sort_unstable();
    }
    // Orient by the shuffled order: slot (u, v) is out iff u precedes v.
    let mut init_out = vec![0u64; half_edges.div_ceil(64)];
    for u in 0..n {
        let run = offsets[u] as usize..offsets[u + 1] as usize;
        for (slot, &t) in targets[run.clone()].iter().enumerate() {
            if rank[u] < rank[t as usize] {
                bit_set(&mut init_out, run.start + slot);
            }
        }
    }
    let csr = CsrGraph::from_sorted_adjacency(offsets, targets)
        .expect("capacity checked before allocation");
    CsrInstance {
        csr: Arc::new(csr),
        init_out,
        dest: NodeId::new(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generate;

    /// Every streaming family must equal the conversion of its
    /// materializing counterpart — same CSR, same packed orientation,
    /// same destination. (The differential proptest in
    /// `tests/proptest_graph.rs` covers randomized parameters.)
    #[test]
    fn streaming_families_match_materializing_counterparts() {
        for n in [2usize, 3, 5, 9] {
            assert_eq!(
                chain_away(n),
                CsrInstance::from_instance(&generate::chain_away(n)),
                "chain_away({n})"
            );
            assert_eq!(
                chain_toward(n),
                CsrInstance::from_instance(&generate::chain_toward(n)),
                "chain_toward({n})"
            );
            assert_eq!(
                alternating_chain(n),
                CsrInstance::from_instance(&generate::alternating_chain(n)),
                "alternating_chain({n})"
            );
            assert_eq!(
                star_away(n),
                CsrInstance::from_instance(&generate::star_away(n)),
                "star_away({n})"
            );
            assert_eq!(
                complete_away(n),
                CsrInstance::from_instance(&generate::complete_away(n)),
                "complete_away({n})"
            );
        }
        for depth in 0..3 {
            assert_eq!(
                binary_tree_away(depth),
                CsrInstance::from_instance(&generate::binary_tree_away(depth)),
                "binary_tree_away({depth})"
            );
        }
        for (rows, cols) in [(1, 2), (2, 2), (3, 4), (5, 1)] {
            assert_eq!(
                grid_away(rows, cols),
                CsrInstance::from_instance(&generate::grid_away(rows, cols)),
                "grid_away({rows}, {cols})"
            );
        }
        for seed in 0..4 {
            assert_eq!(
                layered(3, 2, 0.4, seed),
                CsrInstance::from_instance(&generate::layered(3, 2, 0.4, seed)),
                "layered(3, 2, 0.4, {seed})"
            );
            assert_eq!(
                random_connected(9, 6, seed),
                CsrInstance::from_instance(&generate::random_connected(9, 6, seed)),
                "random_connected(9, 6, {seed})"
            );
        }
    }

    #[test]
    fn init_dirs_are_mirrored_across_twins() {
        let inst = random_connected(12, 10, 3);
        let csr = inst.csr();
        for slot in 0..csr.half_edge_count() {
            assert_eq!(
                inst.init_dir_at(slot),
                inst.init_dir_at(csr.twin(slot)).flipped(),
                "slot {slot}"
            );
        }
    }

    #[test]
    fn resident_bytes_stays_within_the_scale_budget() {
        // The 16 bytes/half-edge acceptance bar, checked on a small
        // chain (the per-node arrays amortize at scale; at n = 64 the
        // chain is already under the bar).
        let inst = chain_away(64);
        let per_half_edge = inst.resident_bytes() as f64 / inst.half_edge_count() as f64;
        assert!(
            per_half_edge <= 16.0,
            "chain_away(64) costs {per_half_edge:.2} B/half-edge"
        );
    }

    #[test]
    fn dest_index_resolves() {
        let inst = grid_away(2, 3);
        assert_eq!(inst.dest(), NodeId::new(0));
        assert_eq!(inst.dest_index(), 0);
        assert_eq!(inst.node_count(), 6);
        assert_eq!(inst.half_edge_count(), 2 * 7);
    }
}
