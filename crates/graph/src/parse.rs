//! A small textual format for oriented graphs, used by tests and fixtures.
//!
//! Each non-empty, non-comment line describes one directed edge
//! `u > v` (edge `{u, v}` directed from `u` to `v`), where `u` and `v` are
//! non-negative integers. Lines starting with `#` are comments. A line
//! `dest N` names the destination node.
//!
//! ```
//! use lr_graph::parse::parse_instance;
//! let inst = parse_instance("
//!     ## a 3-chain pointing away from the destination
//!     dest 0
//!     0 > 1
//!     1 > 2
//! ").unwrap();
//! assert_eq!(inst.node_count(), 3);
//! ```

use crate::{GraphError, NodeId, Orientation, ReversalInstance, UndirectedGraph};

/// Parses the textual instance format described at module level.
///
/// # Errors
///
/// Returns [`GraphError::Parse`] for malformed lines, and the underlying
/// validation error (cycle, disconnection, ...) for structurally invalid
/// instances. A missing `dest` line defaults the destination to node 0.
pub fn parse_instance(text: &str) -> Result<ReversalInstance, GraphError> {
    let mut g = UndirectedGraph::new();
    let mut o = Orientation::new();
    let mut dest = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let lineno = idx + 1;
        if let Some(rest) = line.strip_prefix("dest") {
            let id: u32 = rest.trim().parse().map_err(|_| GraphError::Parse {
                line: lineno,
                message: format!("invalid destination id {rest:?}"),
            })?;
            dest = Some(NodeId::new(id));
            continue;
        }
        let mut parts = line.split('>');
        let (a, b) = match (parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), None) => (a.trim(), b.trim()),
            _ => {
                return Err(GraphError::Parse {
                    line: lineno,
                    message: format!("expected `u > v`, got {line:?}"),
                })
            }
        };
        let parse_id = |s: &str| -> Result<NodeId, GraphError> {
            s.parse::<u32>()
                .map(NodeId::new)
                .map_err(|_| GraphError::Parse {
                    line: lineno,
                    message: format!("invalid node id {s:?}"),
                })
        };
        let (u, v) = (parse_id(a)?, parse_id(b)?);
        g.ensure_node(u);
        g.ensure_node(v);
        g.add_edge(u, v)?;
        o.set_from_to(u, v);
    }
    let dest = dest.unwrap_or(NodeId::new(0));
    ReversalInstance::new(g, o, dest)
}

/// Serializes an instance back to the textual format (inverse of
/// [`parse_instance`] up to comments and whitespace).
pub fn to_text(inst: &ReversalInstance) -> String {
    let mut out = format!("dest {}\n", inst.dest.raw());
    for (t, h) in inst.init.directed_edges() {
        out.push_str(&format!("{} > {}\n", t.raw(), h.raw()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_chain_with_comments_and_blanks() {
        let inst = parse_instance("# comment\n\ndest 2\n0 > 1\n1 > 2\n").unwrap();
        assert_eq!(inst.dest, NodeId::new(2));
        assert_eq!(inst.graph.edge_count(), 2);
        assert!(inst.init.points_from_to(NodeId::new(0), NodeId::new(1)));
    }

    #[test]
    fn missing_dest_defaults_to_zero() {
        let inst = parse_instance("0 > 1").unwrap();
        assert_eq!(inst.dest, NodeId::new(0));
    }

    #[test]
    fn malformed_edge_reports_line() {
        let err = parse_instance("0 > 1\nnot an edge\n").unwrap_err();
        match err {
            GraphError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn bad_node_id_reports_line() {
        let err = parse_instance("0 > x").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn bad_dest_reports_line() {
        let err = parse_instance("dest banana\n0 > 1").unwrap_err();
        assert!(matches!(err, GraphError::Parse { line: 1, .. }));
    }

    #[test]
    fn structural_validation_still_applies() {
        // A directed cycle parses but fails validation.
        let err = parse_instance("0 > 1\n1 > 2\n2 > 0").unwrap_err();
        assert_eq!(err, GraphError::ContainsCycle);
    }

    #[test]
    fn round_trips_through_text() {
        let inst = parse_instance("dest 1\n0 > 1\n2 > 1\n0 > 2").unwrap();
        let text = to_text(&inst);
        let back = parse_instance(&text).unwrap();
        assert_eq!(back, inst);
    }
}
