//! Structural graph metrics used by the experiment tables: distances,
//! eccentricities, diameter, and degree statistics.
//!
//! The link-reversal literature relates work and convergence time to
//! structural parameters (path lengths to the destination, diameter);
//! these helpers let the harness report them alongside measurements.

use std::collections::{BTreeMap, VecDeque};

use crate::{NodeId, UndirectedGraph};

/// Undirected BFS distances from `source` to every reachable node.
pub fn bfs_distances(graph: &UndirectedGraph, source: NodeId) -> BTreeMap<NodeId, usize> {
    let mut dist = BTreeMap::new();
    if !graph.contains_node(source) {
        return dist;
    }
    let mut queue = VecDeque::new();
    dist.insert(source, 0);
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        let d = dist[&u];
        for v in graph.neighbors(u) {
            if let std::collections::btree_map::Entry::Vacant(e) = dist.entry(v) {
                e.insert(d + 1);
                queue.push_back(v);
            }
        }
    }
    dist
}

/// The eccentricity of a node: its greatest distance to any node, or
/// `None` when the graph is disconnected from it.
pub fn eccentricity(graph: &UndirectedGraph, u: NodeId) -> Option<usize> {
    let dist = bfs_distances(graph, u);
    (dist.len() == graph.node_count()).then(|| dist.values().copied().max().unwrap_or(0))
}

/// The diameter (greatest eccentricity), or `None` for disconnected or
/// empty graphs.
pub fn diameter(graph: &UndirectedGraph) -> Option<usize> {
    graph
        .nodes()
        .map(|u| eccentricity(graph, u))
        .try_fold(0usize, |acc, e| e.map(|e| acc.max(e)))
}

/// The radius (least eccentricity), or `None` for disconnected or empty
/// graphs.
pub fn radius(graph: &UndirectedGraph) -> Option<usize> {
    graph
        .nodes()
        .map(|u| eccentricity(graph, u))
        .try_fold(usize::MAX, |acc, e| e.map(|e| acc.min(e)))
        .filter(|&r| r != usize::MAX)
}

/// Degree statistics of a graph.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DegreeStats {
    /// Smallest degree.
    pub min: usize,
    /// Largest degree.
    pub max: usize,
    /// Mean degree (`2m / n`).
    pub mean: f64,
}

/// Computes [`DegreeStats`]; `None` for the empty graph.
pub fn degree_stats(graph: &UndirectedGraph) -> Option<DegreeStats> {
    if graph.node_count() == 0 {
        return None;
    }
    let degrees: Vec<usize> = graph.nodes().map(|u| graph.degree(u)).collect();
    Some(DegreeStats {
        min: degrees.iter().copied().min().expect("non-empty"),
        max: degrees.iter().copied().max().expect("non-empty"),
        mean: 2.0 * graph.edge_count() as f64 / graph.node_count() as f64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: u32) -> NodeId {
        NodeId::new(i)
    }

    fn path(len: u32) -> UndirectedGraph {
        let edges: Vec<(u32, u32)> = (0..len - 1).map(|i| (i, i + 1)).collect();
        UndirectedGraph::from_edges(&edges).unwrap()
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path(5);
        let d = bfs_distances(&g, n(0));
        assert_eq!(d[&n(4)], 4);
        assert_eq!(d[&n(0)], 0);
        assert_eq!(d.len(), 5);
    }

    #[test]
    fn eccentricity_diameter_radius_of_path() {
        let g = path(5);
        assert_eq!(eccentricity(&g, n(0)), Some(4));
        assert_eq!(eccentricity(&g, n(2)), Some(2));
        assert_eq!(diameter(&g), Some(4));
        assert_eq!(radius(&g), Some(2));
    }

    #[test]
    fn star_has_radius_one() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (0, 2), (0, 3), (0, 4)]).unwrap();
        assert_eq!(diameter(&g), Some(2));
        assert_eq!(radius(&g), Some(1));
    }

    #[test]
    fn disconnected_graph_has_no_diameter() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (2, 3)]).unwrap();
        assert_eq!(diameter(&g), None);
        assert_eq!(radius(&g), None);
        assert_eq!(eccentricity(&g, n(0)), None);
    }

    #[test]
    fn degree_statistics() {
        let g = UndirectedGraph::from_edges(&[(0, 1), (0, 2), (0, 3)]).unwrap();
        let s = degree_stats(&g).unwrap();
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 3);
        assert!((s.mean - 1.5).abs() < 1e-9);
        assert_eq!(degree_stats(&UndirectedGraph::new()), None);
    }

    #[test]
    fn single_node_graph() {
        let g = UndirectedGraph::with_nodes(1);
        assert_eq!(diameter(&g), Some(0));
        assert_eq!(radius(&g), Some(0));
    }
}
