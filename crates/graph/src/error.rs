use std::fmt;

use crate::NodeId;

/// Errors produced by graph construction and analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum GraphError {
    /// An edge `{u, u}` from a node to itself was requested.
    SelfLoop(NodeId),
    /// The edge `{u, v}` already exists.
    DuplicateEdge(NodeId, NodeId),
    /// The node is not present in the graph.
    UnknownNode(NodeId),
    /// The edge `{u, v}` is not present in the graph.
    UnknownEdge(NodeId, NodeId),
    /// A directed graph was required to be acyclic but contains a cycle.
    ContainsCycle,
    /// The graph was required to be connected but is not.
    Disconnected,
    /// A textual graph description could not be parsed.
    Parse {
        /// 1-based line number of the offending input line.
        line: usize,
        /// Description of what went wrong.
        message: String,
    },
    /// A graph would need more half-edge slots than the `u32` slot-index
    /// space of [`crate::CsrGraph`] can address.
    SlotCapacity(usize),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::SelfLoop(u) => write!(f, "self-loop at node {u} is not allowed"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge {{{u}, {v}}} already exists"),
            GraphError::UnknownNode(u) => write!(f, "node {u} is not in the graph"),
            GraphError::UnknownEdge(u, v) => write!(f, "edge {{{u}, {v}}} is not in the graph"),
            GraphError::ContainsCycle => write!(f, "directed graph contains a cycle"),
            GraphError::Disconnected => write!(f, "graph is not connected"),
            GraphError::Parse { line, message } => {
                write!(f, "parse error on line {line}: {message}")
            }
            GraphError::SlotCapacity(half_edges) => write!(
                f,
                "{half_edges} half-edges exceed the u32 slot-index capacity ({})",
                u32::MAX
            ),
        }
    }
}

impl std::error::Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = GraphError::SelfLoop(NodeId::new(3));
        assert!(e.to_string().contains("n3"));
        let e = GraphError::DuplicateEdge(NodeId::new(1), NodeId::new(2));
        assert!(e.to_string().contains("n1"));
        assert!(e.to_string().contains("n2"));
        let e = GraphError::Parse {
            line: 4,
            message: "bad token".into(),
        };
        assert!(e.to_string().contains("line 4"));
    }

    #[test]
    fn error_trait_is_implemented() {
        fn assert_error<E: std::error::Error>(_: &E) {}
        assert_error(&GraphError::ContainsCycle);
    }
}
