//! End-to-end tests of the `lr` binary itself (spawned as a real
//! process, exercising argument handling, stdin plumbing, and exit
//! codes).

use std::io::Write;
use std::process::{Command, Stdio};

fn lr() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lr"))
}

fn run_with_stdin(args: &[&str], stdin: &str) -> (String, String, bool) {
    let mut child = lr()
        .args(args)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .expect("binary spawns");
    child
        .stdin
        .as_mut()
        .expect("piped")
        .write_all(stdin.as_bytes())
        .expect("write stdin");
    let out = child.wait_with_output().expect("binary runs");
    (
        String::from_utf8_lossy(&out.stdout).into_owned(),
        String::from_utf8_lossy(&out.stderr).into_owned(),
        out.status.success(),
    )
}

#[test]
fn help_prints_usage_and_succeeds() {
    let (stdout, _, ok) = run_with_stdin(&["help"], "");
    assert!(ok);
    assert!(stdout.contains("USAGE"));
}

#[test]
fn help_flags_match_help_command() {
    let (reference, _, _) = run_with_stdin(&["help"], "");
    for flag in ["--help", "-h"] {
        let (stdout, stderr, ok) = run_with_stdin(&[flag], "");
        assert!(ok, "`lr {flag}` must exit 0");
        assert!(stderr.is_empty(), "`lr {flag}` must not write to stderr");
        assert_eq!(stdout, reference, "`lr {flag}` and `lr help` must agree");
    }
    // The help text must document every `lr run` execution flag and the
    // observability plumbing — a flag the help doesn't mention is a flag
    // users can't find.
    for needle in [
        "--engine map|frontier",
        "default frontier",
        "--threads N",
        "--obs <off|summary|json|chrome>",
        "--obs-out <path>",
        "lr obs validate",
    ] {
        assert!(reference.contains(needle), "help is missing {needle:?}");
    }
}

/// The README's smoke-test pipeline: generate a worst-case chain, run
/// the paper's NewPR on it, and land destination-oriented and acyclic.
#[test]
fn newpr_smoke_run_on_chain_16() {
    let (instance, _, ok) = run_with_stdin(&["generate", "chain-away", "16"], "");
    assert!(ok);
    let (stats, stderr, ok) = run_with_stdin(&["run", "NewPR"], &instance);
    assert!(ok, "NewPR run failed: {stderr}");
    assert!(stats.contains("algorithm:        NewPR"));
    assert!(stats.contains("nodes:            16"));
    assert!(stats.contains("acyclic:          true"));
    assert!(stats.contains("dest oriented:    true"));
    // NewPR on the away-chain must do real work: every non-destination
    // node reverses at least once.
    let reversals: usize = stats
        .lines()
        .find_map(|l| l.strip_prefix("total reversals:"))
        .expect("reversal count printed")
        .trim()
        .parse()
        .expect("reversal count parses");
    assert!(reversals >= 15, "expected ≥ 15 reversals, got {reversals}");
}

#[test]
fn generate_then_run_pipeline() {
    let (instance, _, ok) = run_with_stdin(&["generate", "chain-away", "8"], "");
    assert!(ok);
    assert!(instance.starts_with("dest 0"));
    let (stats, _, ok) = run_with_stdin(&["run", "PR"], &instance);
    assert!(ok);
    assert!(stats.contains("total reversals:  7"));
    assert!(stats.contains("dest oriented:    true"));
}

/// `--engine` end-to-end: the default frontier substrate and the
/// map-backed reference produce the same statistics through a real
/// process, differing only in the reported engine line.
#[test]
fn run_engine_flag_switches_substrate_with_identical_stats() {
    let (instance, _, ok) = run_with_stdin(&["generate", "chain-away", "8"], "");
    assert!(ok);
    let (frontier, stderr, ok) = run_with_stdin(&["run", "PR"], &instance);
    assert!(ok, "frontier run failed: {stderr}");
    assert!(
        frontier.contains("engine:           frontier"),
        "{frontier}"
    );
    assert!(frontier.contains("total reversals:  7"), "{frontier}");
    let (map, stderr, ok) = run_with_stdin(&["run", "PR", "--engine", "map"], &instance);
    assert!(ok, "map run failed: {stderr}");
    assert!(map.contains("engine:           map"), "{map}");
    assert_eq!(frontier.replace("frontier", "map"), map);
    let (_, stderr, ok) = run_with_stdin(&["run", "PR", "--engine", "warp"], &instance);
    assert!(!ok);
    assert!(stderr.contains("unknown engine"), "{stderr}");
}

/// `--threads` end-to-end: the node-range-sharded parallel loop is
/// bit-identical to the sequential run through a real process, and
/// single-step policies refuse to shard.
#[test]
fn run_threads_flag_is_bit_identical_through_the_binary() {
    let (instance, _, ok) = run_with_stdin(&["generate", "random", "24", "11"], "");
    assert!(ok);
    let (seq, _, ok) = run_with_stdin(&["run", "GB-triple"], &instance);
    assert!(ok);
    let (par, stderr, ok) = run_with_stdin(&["run", "GB-triple", "--threads=2"], &instance);
    assert!(ok, "sharded run failed: {stderr}");
    assert!(par.contains("threads:          2"), "{par}");
    assert_eq!(
        par.replace("threads:          2", "threads:          1"),
        seq
    );
    let (_, stderr, ok) =
        run_with_stdin(&["run", "GB-triple", "first", "--threads", "2"], &instance);
    assert!(!ok);
    assert!(stderr.contains("greedy"), "{stderr}");
}

/// `--obs` end-to-end: a traced run exports a Chrome trace through a
/// real process, `lr obs validate` accepts it, and the run's own stats
/// are unchanged by recording. This is the same pipeline the CI obs
/// smoke step drives.
#[test]
fn obs_chrome_trace_round_trips_through_the_binary() {
    let trace_path = std::env::temp_dir().join(format!("lr_bin_trace_{}.json", std::process::id()));
    let trace_s = trace_path.to_str().unwrap();
    let (instance, _, ok) = run_with_stdin(&["generate", "grid", "6"], "");
    assert!(ok);
    let (quiet, _, ok) = run_with_stdin(&["run", "PR"], &instance);
    assert!(ok);
    let (traced, stderr, ok) = run_with_stdin(
        &["run", "PR", "--obs", "chrome", "--obs-out", trace_s],
        &instance,
    );
    assert!(ok, "traced run failed: {stderr}");
    assert!(traced.starts_with(&quiet), "recording must only append");
    assert!(traced.contains("chrome trace"), "{traced}");
    let (validated, stderr, ok) = run_with_stdin(&["obs", "validate", trace_s], "");
    assert!(ok, "validate failed: {stderr}");
    assert!(validated.contains(": OK"), "{validated}");
    let text = std::fs::read_to_string(&trace_path).unwrap();
    assert!(text.contains("traceEvents"), "{text}");
    assert!(text.contains("engine.round"), "{text}");
    let _ = std::fs::remove_file(&trace_path);

    // Summary mode appends the table to stdout instead.
    let (summary, stderr, ok) = run_with_stdin(&["run", "PR", "--obs", "summary"], &instance);
    assert!(ok, "summary run failed: {stderr}");
    assert!(summary.contains("observability summary"), "{summary}");
    assert!(summary.contains("engine.steps"), "{summary}");
}

#[test]
fn trace_and_check_and_dot() {
    let (instance, _, _) = run_with_stdin(&["generate", "alternating", "6"], "");
    let (trace, _, ok) = run_with_stdin(&["trace", "NewPR", "first"], &instance);
    assert!(ok);
    assert!(trace.contains("step   1"));
    let (check, _, ok) = run_with_stdin(&["check"], &instance);
    assert!(ok);
    assert!(check.contains("all checks passed"));
    let (dot, _, ok) = run_with_stdin(&["dot"], &instance);
    assert!(ok);
    assert!(dot.contains("digraph"));
}

#[test]
fn scenario_validate_and_smoke_run_the_shipped_examples() {
    let dir = format!("{}/examples/scenarios", env!("CARGO_MANIFEST_DIR"));
    let specs: Vec<String> = std::fs::read_dir(&dir)
        .expect("examples/scenarios exists")
        .map(|e| e.unwrap().path().display().to_string())
        .filter(|p| p.ends_with(".json"))
        .collect();
    assert!(specs.len() >= 2, "at least two shipped example scenarios");
    let mut args = vec!["scenario", "validate"];
    args.extend(specs.iter().map(String::as_str));
    let (out, stderr, ok) = run_with_stdin(&args, "");
    assert!(ok, "validate failed: {stderr}");
    assert_eq!(out.matches(": OK").count(), specs.len(), "{out}");

    // Smoke run without touching the committed trajectory. Specs with
    // a matrix section go through `scenario sweep` instead (and `run`
    // refuses them, tested elsewhere). Classified structurally —
    // parsed, not substring-matched — so a spec merely *named*
    // "matrix" would still be routed to `run`.
    let (matrix_specs, run_specs): (Vec<&String>, Vec<&String>) = specs.iter().partition(|p| {
        let text = std::fs::read_to_string(p.as_str()).expect("spec readable");
        lr_scenario::ScenarioSpec::from_json(&text)
            .expect("shipped spec parses")
            .matrix
            .is_some()
    });
    assert!(!run_specs.is_empty(), "plain example scenarios shipped");
    assert!(!matrix_specs.is_empty(), "a matrix example is shipped");
    let mut args = vec!["scenario", "run", "--smoke", "--no-append"];
    args.extend(run_specs.iter().map(|s| s.as_str()));
    let (out, stderr, ok) = run_with_stdin(&args, "");
    assert!(ok, "smoke run failed: {stderr}");
    for spec in &run_specs {
        assert!(
            out.contains(spec.as_str()),
            "missing table for {spec}: {out}"
        );
    }
    assert!(out.contains("summary"));
    assert!(out.contains("append skipped"));
}

#[test]
fn scenario_sweep_expands_the_matrix_example_to_the_expected_cells() {
    let spec_path = format!(
        "{}/examples/scenarios/matrix_sweep.json",
        env!("CARGO_MANIFEST_DIR")
    );
    // The shipped example declares protocol×2, topology×3, links×2,
    // churn_scale×2 = 24 points; smoke mode runs one cell per point.
    let expected_points = 2 * 3 * 2 * 2;
    let (out, stderr, ok) = run_with_stdin(
        &[
            "scenario",
            "sweep",
            "--smoke",
            "--no-append",
            "--threads",
            "2",
            &spec_path,
        ],
        "",
    );
    assert!(ok, "sweep failed: {stderr}");
    // Parse the emitted summary line: "... matrix expanded to K
    // point(s) = C cell(s), N thread(s)".
    let summary = out
        .lines()
        .find(|l| l.contains("matrix expanded to"))
        .unwrap_or_else(|| panic!("no expansion summary in:\n{out}"));
    let number_before = |marker: &str| -> usize {
        let head = summary.split(marker).next().expect("marker present");
        head.split_whitespace()
            .last()
            .expect("number before marker")
            .parse()
            .unwrap_or_else(|_| panic!("unparseable count in {summary:?}"))
    };
    assert_eq!(number_before(" point(s)"), expected_points, "{summary}");
    assert_eq!(
        number_before(" cell(s)"),
        expected_points,
        "smoke = one cell per point: {summary}"
    );
    assert!(out.contains("summary row(s) (append skipped)"), "{out}");
}

#[test]
fn scenario_rejects_malformed_spec_files_with_path_errors() {
    let bad = std::env::temp_dir().join(format!("lr_bin_bad_spec_{}.json", std::process::id()));
    std::fs::write(
        &bad,
        r#"{"name": "x", "topology": {"family": "chain-away", "n": 4},
            "churn": [{"at": 5, "fail": [[0, 3]]}]}"#,
    )
    .unwrap();
    let (_, stderr, ok) = run_with_stdin(&["scenario", "run", bad.to_str().unwrap()], "");
    assert!(!ok, "dangling churn edge must fail");
    assert!(stderr.contains("churn[0]"), "{stderr}");
    assert!(stderr.contains("no link 0-3"), "{stderr}");
    let _ = std::fs::remove_file(&bad);
}

#[test]
fn bad_input_fails_with_message_and_nonzero_exit() {
    let (_, stderr, ok) = run_with_stdin(&["run", "PR"], "garbage input");
    assert!(!ok);
    assert!(stderr.contains("invalid instance"));

    let (_, stderr, ok) = run_with_stdin(&["frobnicate"], "");
    assert!(!ok);
    assert!(stderr.contains("unknown command"));

    let (_, stderr, ok) = run_with_stdin(&["run", "NOPE"], "dest 0\n0 > 1\n");
    assert!(!ok);
    assert!(stderr.contains("unknown algorithm"));
}

/// Satellite contract of the shared numeric-flag parser, end-to-end:
/// every rejection names the flag and echoes the offending value as the
/// user typed it, and `--threads 0` is an explicit error — not a
/// zero-worker hang.
#[test]
fn numeric_flag_errors_name_the_flag_and_echo_the_value() {
    let (instance, _, ok) = run_with_stdin(&["generate", "chain-away", "4"], "");
    assert!(ok);
    let (_, stderr, ok) = run_with_stdin(&["run", "PR", "--threads", "abc"], &instance);
    assert!(!ok, "non-numeric --threads must fail");
    assert!(
        stderr.contains("--threads needs a positive integer"),
        "{stderr}"
    );
    assert!(stderr.contains("\"abc\""), "value echoed: {stderr}");
    let (_, stderr, ok) = run_with_stdin(&["run", "PR", "--threads", "0"], &instance);
    assert!(!ok, "--threads 0 must be rejected, not hang");
    assert!(stderr.contains("--threads must be at least 1"), "{stderr}");
    assert!(stderr.contains("\"0\""), "value echoed: {stderr}");
}

/// Writes a small serve spec next to the other temp fixtures; the
/// examples directory is off limits here because every JSON in it is
/// auto-run by the scenario smoke test above.
fn write_serve_spec(tag: &str) -> std::path::PathBuf {
    let path = std::env::temp_dir().join(format!("lr_bin_serve_{tag}_{}.json", std::process::id()));
    std::fs::write(
        &path,
        r#"{
            "name": "bin-serve",
            "topology": {"family": "grid", "rows": 5, "cols": 5},
            "seeds": [23]
        }"#,
    )
    .unwrap();
    path
}

/// `lr serve` end-to-end: for a fixed seed the full stdout is
/// byte-identical across runs and across `--threads {1, 2, 4}` — the
/// acceptance contract of the resident service mode.
#[test]
fn serve_is_byte_identical_across_runs_and_thread_counts() {
    let spec = write_serve_spec("det");
    let spec_s = spec.to_str().unwrap();
    let args = |threads: &'static str| {
        vec![
            "serve",
            spec_s,
            "--rate",
            "8",
            "--duration",
            "30",
            "--threads",
            threads,
            "--no-append",
        ]
    };
    let (base, stderr, ok) = run_with_stdin(&args("1"), "");
    assert!(ok, "serve failed: {stderr}");
    assert!(base.contains("serve bin-serve:"), "{base}");
    assert!(base.contains("latency (ticks): p50"), "{base}");
    let (again, _, ok) = run_with_stdin(&args("1"), "");
    assert!(ok);
    assert_eq!(base, again, "same seed, same bytes");
    for threads in ["2", "4"] {
        let (par, stderr, ok) = run_with_stdin(&args(threads), "");
        assert!(ok, "serve --threads {threads} failed: {stderr}");
        assert_eq!(base, par, "--threads {threads} changed the output");
    }
    let _ = std::fs::remove_file(&spec);
}

/// The CI serve-smoke pipeline end-to-end: a feed-driven smoke run with
/// `--obs chrome` exports a trace that `lr obs validate` accepts.
#[test]
fn serve_smoke_with_chrome_trace_round_trips_through_validate() {
    let spec = write_serve_spec("obs");
    let spec_s = spec.to_str().unwrap();
    let trace =
        std::env::temp_dir().join(format!("lr_bin_serve_trace_{}.json", std::process::id()));
    let trace_s = trace.to_str().unwrap();
    let feed = "{\"at\": 3, \"fail\": [0, 1]}\n{\"at\": 9, \"heal\": [0, 1]}\n{\"at\": 12, \"route\": 7}\n";
    let (out, stderr, ok) = run_with_stdin(
        &[
            "serve",
            spec_s,
            "--rate",
            "5",
            "--duration",
            "20",
            "--feed",
            "-",
            "--smoke",
            "--no-append",
            "--obs",
            "chrome",
            "--obs-out",
            trace_s,
        ],
        feed,
    );
    assert!(ok, "serve smoke failed: {stderr}");
    assert!(out.contains("feed 1"), "feed route offered: {out}");
    assert!(out.contains("churn events applied 2"), "{out}");
    assert!(out.contains("chrome trace"), "{out}");
    let (validated, stderr, ok) = run_with_stdin(&["obs", "validate", trace_s], "");
    assert!(ok, "validate failed: {stderr}");
    assert!(validated.contains(": OK"), "{validated}");
    let text = std::fs::read_to_string(&trace).unwrap();
    assert!(text.contains("serve.batch"), "{text}");
    assert!(text.contains("serve.settle"), "{text}");
    let _ = std::fs::remove_file(&trace);
    let _ = std::fs::remove_file(&spec);
}

/// `lr modelcheck` end-to-end: the full n = 3 battery verifies through a
/// real process at 2 outer threads, and `LR_MC_THREADS` is honored when
/// the flag is absent (both paths must report the same instance totals).
#[test]
fn modelcheck_battery_verifies_through_the_binary() {
    let (stdout, stderr, ok) =
        run_with_stdin(&["modelcheck", "3", "--threads", "2", "--no-append"], "");
    assert!(ok, "modelcheck failed: {stderr}");
    assert!(stdout.contains("n = 3"), "{stdout}");
    assert!(stdout.contains("2 thread(s)"), "{stdout}");
    assert!(stdout.contains("append skipped"), "{stdout}");
    assert!(!stdout.contains(" NO"), "{stdout}");

    let mut child = lr();
    child.env("LR_MC_THREADS", "2");
    let out = child
        .args(["modelcheck", "3", "--checks", "newpr", "--no-append"])
        .output()
        .expect("binary runs");
    assert!(out.status.success());
    let env_stdout = String::from_utf8_lossy(&out.stdout);
    assert!(env_stdout.contains("2 thread(s)"), "{env_stdout}");
    assert!(env_stdout.contains("54"), "{env_stdout}");
}
