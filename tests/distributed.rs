//! Integration tests for the distributed layer: the message-passing
//! protocol's outcomes must agree with the centralized theory — same
//! destination-orientation guarantee, work within the same bounds — and
//! the applications must keep their invariants under churn.

use link_reversal::graph::{generate, DirectedView, NodeId};
use link_reversal::net::election::ElectionHarness;
use link_reversal::net::live::run_threaded;
use link_reversal::net::mutex::MutexHarness;
use link_reversal::net::reversal::{converge, height_snapshot, orientation_from_heights};
use link_reversal::net::routing::RoutingHarness;
use link_reversal::net::sim::LinkConfig;

#[test]
fn distributed_convergence_matches_theory_guarantees() {
    for seed in 0..4 {
        let inst = generate::random_connected(25, 25, 6000 + seed);
        let sim = converge(&inst, LinkConfig::default(), seed, 10_000_000);
        let o = orientation_from_heights(&inst.graph, &height_snapshot(&sim));
        let view = DirectedView::new(&inst.graph, &o);
        assert!(view.is_acyclic());
        assert!(view.is_destination_oriented(inst.dest));
        // Work bound: the distributed schedule is an admissible PR
        // schedule, so the Θ(n_b²) ceiling applies.
        let nb = inst.initial_bad_nodes() as u64;
        let total: u64 = sim.nodes().map(|(_, n)| n.reversals).sum();
        assert!(total <= (nb + 1) * (nb + 1) + inst.node_count() as u64);
    }
}

#[test]
fn distributed_work_is_invariant_to_message_timing_on_trees() {
    // On trees, PR reversal sets are schedule-independent, so any two
    // timing regimes must do identical total work.
    let inst = generate::binary_tree_away(3);
    let calm = converge(&inst, LinkConfig::default(), 1, 10_000_000);
    let wild = converge(
        &inst,
        LinkConfig {
            delay: 5,
            jitter: 20,
            loss: 0.0,
        },
        99,
        10_000_000,
    );
    let work = |sim: &link_reversal::net::sim::EventSim<
        link_reversal::net::reversal::DistributedPr,
    >|
     -> u64 { sim.nodes().map(|(_, n)| n.reversals).sum() };
    assert_eq!(work(&calm), work(&wild));
}

#[test]
fn threaded_and_simulated_modes_agree_on_final_structure() {
    let inst = generate::grid_away(4, 4);
    let sim = converge(&inst, LinkConfig::default(), 3, 10_000_000);
    let sim_o = orientation_from_heights(&inst.graph, &height_snapshot(&sim));
    let live = run_threaded(&inst);
    let live_o = orientation_from_heights(&inst.graph, &live.heights);
    // Different schedules may reach different DAGs, but both must be
    // acyclic and destination-oriented.
    for o in [sim_o, live_o] {
        let view = DirectedView::new(&inst.graph, &o);
        assert!(view.is_acyclic());
        assert!(view.is_destination_oriented(inst.dest));
    }
}

#[test]
fn routing_delivers_under_lossless_churn() {
    let inst = generate::random_connected(18, 20, 7000);
    let mut h = RoutingHarness::converged(&inst, LinkConfig::default(), 4);
    for u in inst.graph.nodes().filter(|&u| u != inst.dest) {
        h.send_packet(u);
    }
    let r = h.run(10_000_000);
    assert_eq!(r.delivered, r.injected);
}

#[test]
fn election_then_routing_composes() {
    // After a leader crash and re-election, the surviving DAG routes
    // toward the new leader — verified structurally by the harness.
    let inst = generate::random_connected(14, 16, 8000);
    let mut h = ElectionHarness::converged(&inst, LinkConfig::default(), 5);
    h.crash_leader();
    let report = h.run(10_000_000);
    let expected: NodeId = inst.graph.neighbors(inst.dest).max().unwrap();
    assert_eq!(report.leader, expected);
}

#[test]
fn mutex_serves_heavy_contention() {
    let inst = generate::random_connected(16, 14, 9000);
    let mut h = MutexHarness::new(&inst.graph, inst.dest, LinkConfig::default(), 6);
    let mut expected = 0;
    for round in 0..5 {
        for u in inst.graph.nodes() {
            if (u.raw() + round) % 2 == 0 {
                h.request(u);
                expected += 1;
            }
        }
    }
    let r = h.run(10_000_000);
    assert_eq!(r.cs_entries, expected);
}
