//! Cross-crate integration: every algorithm × every generator family ×
//! every scheduling policy terminates in an acyclic, destination-oriented
//! graph, and the automaton and engine forms of each algorithm agree.

use link_reversal::prelude::*;

fn families() -> Vec<(&'static str, ReversalInstance)> {
    vec![
        ("chain_away", generate::chain_away(17)),
        ("chain_toward", generate::chain_toward(17)),
        ("alternating_chain", generate::alternating_chain(17)),
        ("star_away", generate::star_away(9)),
        ("binary_tree_away", generate::binary_tree_away(2)),
        ("grid_away", generate::grid_away(4, 5)),
        ("complete_away", generate::complete_away(9)),
        ("layered", generate::layered(4, 4, 0.5, 11)),
        ("random_sparse", generate::random_connected(20, 5, 21)),
        ("random_dense", generate::random_connected(20, 60, 22)),
    ]
}

#[test]
fn every_algorithm_orients_every_family_under_every_policy() {
    let policies = [
        SchedulePolicy::GreedyRounds,
        SchedulePolicy::RandomSingle { seed: 77 },
        SchedulePolicy::FirstSingle,
        SchedulePolicy::LastSingle,
    ];
    for (name, inst) in families() {
        for kind in AlgorithmKind::ALL {
            for policy in policies {
                let mut engine = kind.engine(&inst);
                let stats = run_to_destination_oriented(engine.as_mut(), policy, DEFAULT_MAX_STEPS);
                assert!(
                    stats.terminated,
                    "{} did not terminate on {name} under {policy:?}",
                    kind.name()
                );
            }
        }
    }
}

#[test]
fn final_work_is_schedule_sensitive_but_bounded() {
    // PR's total work varies across schedules but always stays within the
    // Θ(n_b²) bound family-wise.
    let inst = generate::alternating_chain(33);
    let nb = inst.initial_bad_nodes();
    for policy in [
        SchedulePolicy::GreedyRounds,
        SchedulePolicy::RandomSingle { seed: 5 },
        SchedulePolicy::FirstSingle,
    ] {
        let mut e = PrEngine::new(&inst);
        let stats = run_engine(&mut e, policy, DEFAULT_MAX_STEPS);
        assert!(stats.terminated);
        assert!(
            stats.total_reversals <= nb * nb + nb,
            "work {} exceeds quadratic bound for nb = {nb}",
            stats.total_reversals
        );
    }
}

#[test]
fn acyclicity_holds_in_every_intermediate_state() {
    // Drive each algorithm one step at a time and check acyclicity and
    // mirror-consistency at every prefix.
    let inst = generate::random_connected(14, 12, 33);
    for kind in AlgorithmKind::ALL {
        let mut engine = kind.engine(&inst);
        let mut guard = 0;
        loop {
            let o = engine.orientation();
            let view = DirectedView::new(&inst.graph, &o);
            assert!(view.is_acyclic(), "{} broke acyclicity", kind.name());
            let Some(&u) = engine.enabled().first() else {
                break;
            };
            engine.step(u);
            guard += 1;
            assert!(guard < 1_000_000);
        }
        let o = engine.orientation();
        assert!(DirectedView::new(&inst.graph, &o).is_destination_oriented(inst.dest));
    }
}

#[test]
fn automata_and_engines_trace_identically() {
    let inst = generate::random_connected(10, 8, 44);
    // NewPR
    let aut = NewPrAutomaton { inst: &inst };
    let exec = run(&aut, &mut schedulers::UniformRandom::seeded(9), 100_000);
    let mut eng = NewPrEngine::new(&inst);
    for &u in exec.actions() {
        eng.step(u);
    }
    assert_eq!(eng.orientation(), exec.last_state().dirs.orientation());
    // OneStepPR
    let aut = OneStepPrAutomaton { inst: &inst };
    let exec = run(&aut, &mut schedulers::UniformRandom::seeded(9), 100_000);
    let mut eng = PrEngine::new(&inst);
    for &u in exec.actions() {
        eng.step(u);
    }
    assert_eq!(eng.orientation(), exec.last_state().dirs.orientation());
}

#[test]
fn height_formulations_match_list_formulations_on_large_graphs() {
    // E11 at integration scale: identical schedules must produce
    // identical orientations at every step.
    for seed in 0..3 {
        let inst = generate::random_connected(40, 50, 1234 + seed);
        let mut pr = PrEngine::new(&inst);
        let mut gb = TripleHeightsEngine::new(&inst);
        let mut fr = FullReversalEngine::new(&inst);
        let mut gp = PairHeightsEngine::new(&inst);
        let mut guard = 0;
        loop {
            assert_eq!(pr.enabled(), gb.enabled());
            let Some(&u) = pr.enabled().first() else {
                break;
            };
            assert_eq!(pr.step(u).reversed, gb.step(u).reversed);
            guard += 1;
            assert!(guard < 1_000_000);
        }
        loop {
            assert_eq!(fr.enabled(), gp.enabled());
            let Some(&u) = fr.enabled().first() else {
                break;
            };
            assert_eq!(fr.step(u).reversed, gp.step(u).reversed);
            guard += 1;
            assert!(guard < 2_000_000);
        }
        assert_eq!(pr.orientation(), gb.orientation());
        assert_eq!(fr.orientation(), gp.orientation());
    }
}

#[test]
fn bll_instantiations_match_their_targets_at_scale() {
    let inst = generate::random_connected(30, 35, 555);
    let mut bll_pr = BllEngine::new(&inst, BllLabeling::PartialReversal);
    let mut pr = PrEngine::new(&inst);
    let mut guard = 0;
    loop {
        assert_eq!(bll_pr.enabled(), pr.enabled());
        let Some(&u) = pr.enabled().last() else {
            break;
        };
        assert_eq!(bll_pr.step(u).reversed, pr.step(u).reversed);
        guard += 1;
        assert!(guard < 1_000_000);
    }
    assert_eq!(bll_pr.orientation(), pr.orientation());
}

#[test]
fn destination_never_steps_anywhere() {
    for (name, inst) in families() {
        for kind in AlgorithmKind::ALL {
            let mut engine = kind.engine(&inst);
            let stats = run_engine(
                engine.as_mut(),
                SchedulePolicy::RandomSingle { seed: 1 },
                DEFAULT_MAX_STEPS,
            );
            let dest_idx = engine.csr().index_of(inst.dest).expect("dest is a node");
            assert_eq!(
                stats.work[dest_idx],
                0,
                "destination stepped in {} on {name}",
                kind.name()
            );
        }
    }
}
