//! Property-based tests over random instances: the paper's safety
//! properties must hold for *every* graph, orientation, destination, and
//! schedule — proptest samples that space far more widely than the
//! hand-picked fixtures.

use link_reversal::core::invariants::{check_acyclic, check_inv_3_1, check_inv_4_1, check_inv_4_2};
use link_reversal::prelude::*;
use proptest::prelude::*;

/// Strategy: a random connected instance with 2..=12 nodes.
fn instance_strategy() -> impl Strategy<Value = ReversalInstance> {
    (2usize..=12, 0usize..=20, any::<u64>())
        .prop_map(|(n, extra, seed)| generate::random_connected(n, extra, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// NewPR: acyclic in every reachable state under a random schedule
    /// (Theorem 4.3, randomized far beyond the exhaustive sizes).
    #[test]
    fn newpr_acyclic_everywhere(inst in instance_strategy(), sched_seed in any::<u64>()) {
        let emb = inst.embedding();
        let aut = NewPrAutomaton { inst: &inst };
        let exec = run(&aut, &mut schedulers::UniformRandom::seeded(sched_seed), 200_000);
        prop_assert!(aut.is_quiescent(exec.last_state()), "NewPR must terminate");
        for s in exec.states() {
            prop_assert!(check_acyclic(&inst, &s.dirs).is_ok());
            prop_assert!(check_inv_3_1(&s.dirs).is_ok());
            prop_assert!(check_inv_4_1(&inst, &emb, s).is_ok());
            prop_assert!(check_inv_4_2(&inst, &emb, s).is_ok());
        }
    }

    /// OneStepPR terminates destination-oriented with acyclicity along
    /// the way (Theorem 5.5, randomized).
    #[test]
    fn onestep_pr_safe_and_live(inst in instance_strategy(), sched_seed in any::<u64>()) {
        let aut = OneStepPrAutomaton { inst: &inst };
        let exec = run(&aut, &mut schedulers::UniformRandom::seeded(sched_seed), 200_000);
        prop_assert!(aut.is_quiescent(exec.last_state()));
        for s in exec.states() {
            prop_assert!(check_acyclic(&inst, &s.dirs).is_ok());
        }
        let o = exec.last_state().dirs.orientation();
        prop_assert!(DirectedView::new(&inst.graph, &o).is_destination_oriented(inst.dest));
    }

    /// The triple-heights formulation tracks list-based PR exactly under
    /// identical schedules (the Gafni–Bertsekas correspondence, E11).
    #[test]
    fn heights_equal_lists_under_any_schedule(
        inst in instance_strategy(),
        pick_last in any::<bool>(),
    ) {
        let mut pr = PrEngine::new(&inst);
        let mut gb = TripleHeightsEngine::new(&inst);
        let mut guard = 0;
        loop {
            prop_assert_eq!(pr.enabled(), gb.enabled());
            let pick = if pick_last {
                pr.enabled().last()
            } else {
                pr.enabled().first()
            };
            let Some(&u) = pick else { break };
            prop_assert_eq!(pr.step(u).reversed, gb.step(u).reversed);
            guard += 1;
            prop_assert!(guard < 500_000);
        }
        prop_assert_eq!(pr.orientation(), gb.orientation());
    }

    /// R' and R hold along arbitrary PR executions (Lemmas 5.1/5.3,
    /// randomized).
    #[test]
    fn simulation_relations_hold(inst in instance_strategy(), sched_seed in any::<u64>()) {
        let pr = PrSetAutomaton { inst: &inst };
        let os = OneStepPrAutomaton { inst: &inst };
        let np = NewPrAutomaton { inst: &inst };
        let exec = run(&pr, &mut schedulers::UniformRandom::seeded(sched_seed), 50_000);
        let os_exec = r_prime_checker(&inst).check_execution(&pr, &os, &exec).unwrap();
        let np_exec = r_checker(&inst).check_execution(&os, &np, &os_exec).unwrap();
        prop_assert_eq!(
            os_exec.last_state().dirs.orientation(),
            np_exec.last_state().dirs.orientation()
        );
    }

    /// Work never exceeds the Θ(n_b²) ceiling cited in §1 (with the
    /// small additive slack for NewPR's dummy steps).
    #[test]
    fn work_is_quadratically_bounded(inst in instance_strategy(), seed in any::<u64>()) {
        let nb = inst.initial_bad_nodes();
        let n = inst.node_count();
        for kind in AlgorithmKind::ALL {
            let mut e = kind.engine(&inst);
            let stats = run_engine(e.as_mut(), SchedulePolicy::RandomSingle { seed }, 10_000_000);
            prop_assert!(stats.terminated);
            // Loose but universal sanity ceiling: (nb+1)² + n steps.
            prop_assert!(
                stats.steps <= (nb + 1) * (nb + 1) + n,
                "{} took {} steps with nb = {nb}",
                kind.name(), stats.steps
            );
        }
    }

    /// Busch–Tirthapura's deterministic-work theorem (cited in §1): the
    /// per-node reversal counts are identical in every execution —
    /// link reversal is an abelian process.
    #[test]
    fn work_is_schedule_independent(inst in instance_strategy(), seed in any::<u64>()) {
        for kind in AlgorithmKind::ALL {
            let mut reference = None;
            for policy in [
                SchedulePolicy::GreedyRounds,
                SchedulePolicy::RandomSingle { seed },
                SchedulePolicy::FirstSingle,
                SchedulePolicy::LastSingle,
            ] {
                let mut e = kind.engine(&inst);
                let stats = run_engine(e.as_mut(), policy, 10_000_000);
                prop_assert!(stats.terminated);
                // The dense work vector is comparable across runs on one
                // instance: every engine shares the same CSR indexing.
                let work = (stats.work, stats.total_reversals);
                match &reference {
                    None => reference = Some(work),
                    Some(r) => prop_assert_eq!(
                        &work, r,
                        "{} work differs across schedules", kind.name()
                    ),
                }
            }
        }
    }

    /// Orientation reversal is an involution and serde round-trips
    /// preserve instances.
    #[test]
    fn instance_serde_round_trip(inst in instance_strategy()) {
        let json = serde_json::to_string(&inst).unwrap();
        let back: ReversalInstance = serde_json::from_str(&json).unwrap();
        prop_assert_eq!(back, inst);
    }

    /// The plane embedding orients every initial edge left-to-right —
    /// the premise of §4.2's proof setup.
    #[test]
    fn embedding_orients_initial_edges_ltr(inst in instance_strategy()) {
        let emb = inst.embedding();
        for (t, h) in inst.init.directed_edges() {
            prop_assert!(emb.is_left_of(t, h));
        }
    }
}
