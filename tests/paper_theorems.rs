//! The paper's numbered claims, checked end-to-end through the public
//! API. Each test names the statement it reproduces.

use link_reversal::core::invariants::{
    check_acyclic, check_cor_3_3, check_cor_3_4, check_inv_3_1, check_inv_3_2, check_inv_4_1,
    check_inv_4_2,
};
use link_reversal::prelude::*;
use link_reversal::simrel::model_check::{
    model_check_newpr, model_check_onestep_pr, model_check_pr_set, model_check_r,
    model_check_r_prime,
};
use link_reversal::simrel::refinement::refine_and_check;

/// Invariants 3.1/3.2 + Corollaries 3.3/3.4 along long random OneStepPR
/// executions on mid-size graphs (beyond what the exhaustive checker can
/// enumerate).
#[test]
fn section_3_invariants_on_random_executions() {
    for seed in 0..5 {
        let inst = generate::random_connected(15, 15, 2000 + seed);
        let aut = OneStepPrAutomaton { inst: &inst };
        let exec = run(&aut, &mut schedulers::UniformRandom::seeded(seed), 100_000);
        assert!(aut.is_quiescent(exec.last_state()));
        for s in exec.states() {
            check_inv_3_1(&s.dirs).unwrap();
            check_inv_3_2(&inst, s).unwrap();
            check_cor_3_3(&inst, s).unwrap();
            check_cor_3_4(&inst, s).unwrap();
        }
    }
}

/// Invariants 4.1/4.2 and Theorem 4.3 along long random NewPR executions.
#[test]
fn section_4_invariants_on_random_executions() {
    for seed in 0..5 {
        let inst = generate::random_connected(15, 15, 3000 + seed);
        let emb = inst.embedding();
        let aut = NewPrAutomaton { inst: &inst };
        let exec = run(&aut, &mut schedulers::UniformRandom::seeded(seed), 100_000);
        assert!(aut.is_quiescent(exec.last_state()));
        for s in exec.states() {
            check_inv_3_1(&s.dirs).unwrap();
            check_inv_4_1(&inst, &emb, s).unwrap();
            check_inv_4_2(&inst, &emb, s).unwrap();
            check_acyclic(&inst, &s.dirs).unwrap();
        }
    }
}

/// Theorems 4.3, 5.2, 5.4 and the §3 invariants, exhaustively on every
/// 3-node instance (the 4-node sweep runs in the experiment binary).
#[test]
fn theorems_exhaustive_on_all_three_node_instances() {
    assert!(model_check_newpr(3).verified());
    assert!(model_check_onestep_pr(3).verified());
    assert!(model_check_pr_set(3).verified());
    assert!(model_check_r_prime(3).verified());
    assert!(model_check_r(3).verified());
}

/// Theorem 5.5 via the full refinement chain PR → OneStepPR → NewPR on
/// random executions with set-valued actions.
#[test]
fn theorem_5_5_refinement_chain() {
    for seed in 0..5 {
        let inst = generate::random_connected(9, 8, 4000 + seed);
        let pr = PrSetAutomaton { inst: &inst };
        let exec = run(&pr, &mut schedulers::UniformRandom::seeded(seed), 10_000);
        let report = refine_and_check(&inst, &exec).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
        assert!(report.states_checked > 0);
    }
}

/// §1's complexity picture: PR linear / FR quadratic on the away-chain;
/// both quadratic (and equal) on the alternating chain.
#[test]
fn section_1_work_complexity_shapes() {
    use link_reversal::core::work::{fit_growth_exponent, measure_work};
    let sizes = [16usize, 32, 64, 128];

    let fit = |kind: AlgorithmKind, gen: fn(usize) -> ReversalInstance| {
        let pts: Vec<(f64, f64)> = sizes
            .iter()
            .map(|&n| {
                let w = measure_work(kind, &gen(n));
                (n as f64, w.total_reversals as f64)
            })
            .collect();
        fit_growth_exponent(&pts)
    };

    let fr_away = fit(AlgorithmKind::FullReversal, generate::chain_away);
    let pr_away = fit(AlgorithmKind::PartialReversal, generate::chain_away);
    let fr_alt = fit(AlgorithmKind::FullReversal, generate::alternating_chain);
    let pr_alt = fit(AlgorithmKind::PartialReversal, generate::alternating_chain);

    assert!(
        fr_away > 1.8,
        "FR on away-chain should be quadratic, got {fr_away}"
    );
    assert!(
        pr_away < 1.2,
        "PR on away-chain should be linear, got {pr_away}"
    );
    assert!(
        fr_alt > 1.8,
        "FR on alternating chain should be quadratic, got {fr_alt}"
    );
    assert!(
        pr_alt > 1.8,
        "PR on alternating chain should be quadratic, got {pr_alt}"
    );
}

/// §4.1: NewPR "incurs a greater cost in certain situations" — dummy
/// steps appear exactly when initial sinks/sources re-step, and NewPR's
/// step count equals OneStepPR's plus the dummy count along matched
/// executions.
#[test]
fn section_4_1_dummy_step_accounting() {
    let inst = link_reversal::graph::parse::parse_instance("dest 3\n1 > 0\n2 > 0\n3 > 0").unwrap();
    let os = OneStepPrAutomaton { inst: &inst };
    let np = NewPrAutomaton { inst: &inst };
    let exec = run(&os, &mut schedulers::FirstEnabled, 10_000);
    let matched = r_checker(&inst)
        .check_execution(&os, &np, &exec)
        .expect("R holds");
    let dummies = matched
        .steps()
        .filter(|(pre, &u, post)| {
            pre.dirs.orientation() == post.dirs.orientation() && post.count(u) > pre.count(u)
        })
        .count();
    assert_eq!(matched.len(), exec.len() + dummies);
    assert!(dummies > 0);
}

/// §5's main guarantee, stated observationally: PR, OneStepPR, and NewPR
/// can be driven to the same final directed graph.
#[test]
fn matched_executions_reach_identical_graphs() {
    for seed in 0..5 {
        let inst = generate::random_connected(10, 9, 5000 + seed);
        let pr = PrSetAutomaton { inst: &inst };
        let os = OneStepPrAutomaton { inst: &inst };
        let np = NewPrAutomaton { inst: &inst };
        let exec = run(&pr, &mut schedulers::UniformRandom::seeded(seed), 10_000);
        let os_exec = r_prime_checker(&inst)
            .check_execution(&pr, &os, &exec)
            .unwrap();
        let np_exec = r_checker(&inst)
            .check_execution(&os, &np, &os_exec)
            .unwrap();
        let g1 = exec.last_state().dirs.orientation();
        let g2 = os_exec.last_state().dirs.orientation();
        let g3 = np_exec.last_state().dirs.orientation();
        assert_eq!(g1, g2);
        assert_eq!(g2, g3);
    }
}
