//! Observability end-to-end: run a frontier engine under a recording
//! `lr-obs` session and export the per-round spans as a Chrome trace.
//!
//! ```sh
//! cargo run --release --example traced_run
//! ```
//!
//! The example prints the session's summary table and writes
//! `results/traced_run_trace.json` — open it in `chrome://tracing` or
//! <https://ui.perfetto.dev> to see the round spans on a timeline, each
//! carrying its frontier size as an argument.

use lr_core::alg::FrontierFamily;
use lr_core::engine::{run_engine_frontier, SchedulePolicy, DEFAULT_MAX_STEPS};
use lr_graph::stream;
use lr_obs::{validate_chrome_trace, ObsMode, ObsSession};

fn main() {
    // A 64×64 grid with every edge pointing away from the destination:
    // big enough for a few hundred rounds, small enough that the full
    // event trace stays far below the bounded buffer.
    let inst = stream::grid_away(64, 64);
    println!(
        "instance: grid_away 64x64 — {} nodes, {} half-edges",
        inst.node_count(),
        inst.half_edge_count()
    );

    // Chrome mode records span aggregates AND the full event timeline.
    let session = ObsSession::start(ObsMode::Chrome);
    let mut engine = FrontierFamily::PartialReversal.engine(inst);
    let stats = run_engine_frontier(
        engine.as_mut(),
        SchedulePolicy::GreedyRounds,
        DEFAULT_MAX_STEPS,
    );
    let report = session.finish();

    assert!(stats.terminated, "grid run must terminate");
    println!(
        "run: {} steps, {} reversals, {} rounds\n",
        stats.steps, stats.total_reversals, stats.rounds
    );

    // Sink 1: the human summary table.
    print!("{}", report.render_summary());

    // Sink 2: the Chrome trace document, validated before writing —
    // the same check `lr obs validate` applies.
    let trace = report.render_chrome_trace();
    let events = validate_chrome_trace(&trace).expect("emitted trace must be valid");
    std::fs::create_dir_all("results").expect("results dir");
    let path = "results/traced_run_trace.json";
    std::fs::write(path, &trace).expect("trace written");
    println!("\n{events} trace event(s) written to {path} (load in chrome://tracing)");
}
