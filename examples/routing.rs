//! TORA-style routing demo: converge a destination-oriented DAG over a
//! random ad-hoc network, route packets, fail links, reconverge, route
//! again.
//!
//! ```sh
//! cargo run --example routing
//! ```

use link_reversal::graph::{generate, NodeId};
use link_reversal::net::routing::RoutingHarness;
use link_reversal::net::sim::LinkConfig;

fn main() {
    let inst = generate::random_connected(24, 24, 2024);
    println!(
        "ad-hoc network: {} nodes, {} links, destination {}",
        inst.node_count(),
        inst.graph.edge_count(),
        inst.dest
    );

    let link = LinkConfig {
        delay: 2,
        jitter: 3,
        loss: 0.0,
    };
    let mut harness = RoutingHarness::converged(&inst, link, 7);
    println!("initial reversal converged; sending one packet from every node…");

    for u in inst.graph.nodes() {
        if u != inst.dest {
            harness.send_packet(u);
        }
    }
    let quiet = harness.run(10_000_000);
    println!(
        "  delivered {}/{} packets, mean hops {:.2}, {} messages total\n",
        quiet.delivered, quiet.injected, quiet.mean_hops, quiet.messages
    );

    // Fail a couple of links — only ones whose removal keeps the graph
    // connected, so the destination stays reachable and the reversal
    // protocol can reconverge (handling true partitions is TORA's
    // partition-detection extension, out of scope here).
    let mut failed: Vec<(NodeId, NodeId)> = Vec::new();
    for (u, v) in inst.graph.edges() {
        if failed.len() == 2 {
            break;
        }
        let mut g = link_reversal::graph::UndirectedGraph::new();
        for w in inst.graph.nodes() {
            g.ensure_node(w);
        }
        for (a, b) in inst.graph.edges() {
            let gone = failed.iter().any(|&(x, y)| (a, b) == (x, y)) || (a, b) == (u, v);
            if !gone {
                g.add_edge(a, b).expect("fresh edge");
            }
        }
        if g.is_connected() {
            println!("failing link {u} – {v}");
            harness.fail_link(u, v);
            failed.push((u, v));
        }
    }
    for u in inst.graph.nodes() {
        if u != inst.dest {
            harness.send_packet(u);
        }
    }
    let churn = harness.run(10_000_000);
    println!(
        "\nafter failures: delivered {}/{} packets ({} dropped by TTL, {} stranded), mean hops {:.2}",
        churn.delivered, churn.injected, churn.dropped, churn.stranded, churn.mean_hops
    );
}
