//! Step-by-step trace of the paper's algorithms side by side on the same
//! instance: watch PR skip the edges its list protects, and NewPR insert
//! its dummy steps.
//!
//! ```sh
//! cargo run --example trace_steps
//! ```

use link_reversal::core::trace::Trace;
use link_reversal::prelude::*;

fn main() {
    // The star centered on an initial sink with the destination at a
    // leaf: the canonical dummy-step instance from §4.1 of the paper.
    let inst = link_reversal::graph::parse::parse_instance(
        "# star centered on node 0 (initial sink); destination is leaf 3
         dest 3
         1 > 0
         2 > 0
         3 > 0",
    )
    .expect("valid instance");

    println!("instance: star, center n0 is an initial sink, destination n3\n");
    for kind in [
        AlgorithmKind::FullReversal,
        AlgorithmKind::PartialReversal,
        AlgorithmKind::NewPr,
    ] {
        let mut engine = kind.engine(&inst);
        let trace = Trace::record(
            engine.as_mut(),
            SchedulePolicy::FirstSingle,
            DEFAULT_MAX_STEPS,
        );
        trace.validate().expect("recorded trace must replay");
        println!("{}", trace.render_text());
    }

    // Dump the NewPR run as DOT frames for visualization.
    let mut engine = NewPrEngine::new(&inst);
    let trace = Trace::record(&mut engine, SchedulePolicy::FirstSingle, DEFAULT_MAX_STEPS);
    let frames = trace.render_dot_frames();
    println!(
        "NewPR produced {} DOT frames; first frame:\n{}",
        frames.len(),
        frames[0]
    );
    println!("(pipe each frame through `dot -Tpng` to render an animation)");
}
