//! Mechanized verification of the paper's theorems on every instance of
//! bounded size: all connected graphs × all acyclic orientations × all
//! destinations.
//!
//! ```sh
//! cargo run --release --example model_check        # n = 3 (fast)
//! cargo run --release --example model_check -- 4   # n = 4 (seconds)
//! ```

use link_reversal::simrel::model_check::{
    model_check_newpr, model_check_onestep_pr, model_check_pr_set, model_check_r,
    model_check_r_prime, ModelCheckSummary,
};

fn show(name: &str, what: &str, s: &ModelCheckSummary) {
    let verdict = if s.verified() {
        "VERIFIED".to_string()
    } else {
        format!("VIOLATED: {}", s.first_violation.as_deref().unwrap_or("?"))
    };
    println!(
        "{name:<28} {what:<42} instances={:<6} states={:<9} {verdict}",
        s.instances, s.states_visited
    );
}

fn main() {
    let n: usize = std::env::args()
        .nth(1)
        .map(|a| a.parse().expect("size must be a small integer"))
        .unwrap_or(3);
    assert!((2..=5).contains(&n), "choose n between 2 and 5");

    println!("exhaustive model check over ALL instances with {n} nodes\n");

    show(
        "Thm 4.3 + Inv 3.1/4.1/4.2",
        "every reachable NewPR state, every instance",
        &model_check_newpr(n),
    );
    show(
        "Inv 3.1/3.2 + Cor 3.3/3.4",
        "every reachable OneStepPR state",
        &model_check_onestep_pr(n),
    );
    show(
        "same, set actions",
        "every reachable PR (Algorithm 1) state",
        &model_check_pr_set(n),
    );
    show(
        "Thm 5.2 (R' simulation)",
        "every PR step matched by OneStepPR",
        &model_check_r_prime(n),
    );
    show(
        "Thm 5.4 (R simulation)",
        "every OneStepPR step matched by NewPR",
        &model_check_r(n),
    );

    println!("\nEvery universally-quantified statement in the paper, checked finitely.");
}
