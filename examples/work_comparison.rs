//! Work comparison across algorithms and graph families — a compact
//! version of the benchmark harness, reproducing the §1 complexity
//! picture: PR looks far cheaper than FR on typical inputs, yet both hit
//! the same Θ(n_b²) worst case.
//!
//! ```sh
//! cargo run --release --example work_comparison
//! ```

use link_reversal::core::alg::AlgorithmKind;
use link_reversal::core::work::{fit_growth_exponent, measure_work};
use link_reversal::graph::{generate, ReversalInstance};

fn family(name: &str, gen: fn(usize) -> ReversalInstance, sizes: &[usize]) {
    println!("--- {name} ---");
    println!("{:>6} {:>10} {:>10} {:>10}", "n", "FR", "PR", "NewPR");
    let mut pts: Vec<(AlgorithmKind, Vec<(f64, f64)>)> = [
        AlgorithmKind::FullReversal,
        AlgorithmKind::PartialReversal,
        AlgorithmKind::NewPr,
    ]
    .into_iter()
    .map(|k| (k, Vec::new()))
    .collect();
    for &n in sizes {
        let inst = gen(n);
        let mut row = format!("{n:>6}");
        for (kind, series) in pts.iter_mut() {
            let w = measure_work(*kind, &inst);
            series.push((n as f64, w.total_reversals as f64));
            row.push_str(&format!(" {:>10}", w.total_reversals));
        }
        println!("{row}");
    }
    print!("growth exponents: ");
    for (kind, series) in &pts {
        if series.iter().all(|&(_, y)| y > 0.0) {
            print!("{} ≈ n^{:.2}  ", kind.name(), fit_growth_exponent(series));
        } else {
            print!("{}: no work  ", kind.name());
        }
    }
    println!("\n");
}

fn main() {
    let sizes = [16, 32, 64, 128, 256];
    family(
        "chain away from destination (FR's worst case)",
        generate::chain_away,
        &sizes,
    );
    family(
        "alternating chain (PR's worst case)",
        generate::alternating_chain,
        &sizes,
    );
    family(
        "random connected graphs (seed 1)",
        |n| generate::random_connected(n, n, 1),
        &sizes,
    );
    println!("Takeaway (paper §1): PR is linear where FR is quadratic on the away-chain,");
    println!("but on the alternating chain both fit the same Θ(n²) worst case.");
}
