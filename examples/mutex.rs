//! Mutual exclusion by link reversal: Raymond's token algorithm on a
//! spanning tree. The holder pointers always form a destination-oriented
//! tree whose destination is the token holder — the paper's central
//! property, at work inside a classic mutex protocol.
//!
//! ```sh
//! cargo run --example mutex
//! ```

use link_reversal::graph::{generate, NodeId};
use link_reversal::net::mutex::MutexHarness;
use link_reversal::net::sim::LinkConfig;

fn main() {
    let inst = generate::random_connected(14, 12, 7);
    let root = inst.dest;
    println!(
        "network: {} nodes; token starts at {}",
        inst.node_count(),
        root
    );

    let mut harness = MutexHarness::new(&inst.graph, root, LinkConfig::default(), 5);

    // Three rounds of full contention: every node requests the critical
    // section each round.
    let mut total_requests = 0u64;
    for round in 1..=3 {
        for u in inst.graph.nodes() {
            harness.request(u);
            total_requests += 1;
        }
        let report = harness.run(10_000_000);
        println!(
            "round {round}: {} critical sections served so far, token now at {}, {} messages",
            report.cs_entries, report.final_holder, report.messages
        );
    }

    let final_report = {
        harness.request(NodeId::new(1));
        harness.run(10_000_000)
    };
    assert_eq!(final_report.cs_entries, total_requests + 1);
    println!(
        "\nall {} requests served exactly once; final holder {}",
        total_requests + 1,
        final_report.final_holder
    );
    println!("(the harness verified token uniqueness and that holder pointers");
    println!(" always form a tree oriented toward the token — no cycles, ever)");
}
