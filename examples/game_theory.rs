//! The Charron-Bost game (cited in §1 of the paper): nodes as players,
//! steps as cost, Full vs Partial reversal as strategies. Reproduces
//! "FR is always a Nash equilibrium — the expensive one; PR, when an
//! equilibrium, is globally optimal", by exhaustive enumeration of the
//! profile space on small instances.
//!
//! ```sh
//! cargo run --release --example game_theory
//! ```

use link_reversal::core::game::{
    analyze_profiles, find_profitable_deviation, uniform_profile, Strategy,
};
use link_reversal::graph::generate;

fn main() {
    println!("the reversal game on chain_away(9): 8 players, 256 profiles\n");
    let inst = generate::chain_away(9);
    let analysis = analyze_profiles(&inst);

    println!("social cost of all-Full (FR):     {}", analysis.fr_cost);
    println!("social cost of all-Partial (PR):  {}", analysis.pr_cost);
    println!("global optimum over all profiles: {}", analysis.min_cost);
    println!("worst profile:                    {}", analysis.max_cost);
    println!();
    println!(
        "all-Full a Nash equilibrium?      {}",
        analysis.fr_is_equilibrium
    );
    println!(
        "all-Partial a Nash equilibrium?   {}",
        analysis.pr_is_equilibrium
    );
    println!();

    // FR is an equilibrium: no single node gains by switching.
    let fr = uniform_profile(&inst, Strategy::Full);
    assert_eq!(find_profitable_deviation(&inst, &fr), None);
    println!("verified: no node can unilaterally improve on all-Full, even though");
    println!(
        "it costs {}× the optimum — the \"costliest equilibrium\" of the paper's §1.",
        analysis.fr_cost / analysis.min_cost.max(1)
    );
    assert_eq!(analysis.pr_cost, analysis.min_cost);
    println!("verified: all-Partial achieves the global optimum here, and it is an");
    println!("equilibrium — \"how to play better to work less\".");
}
