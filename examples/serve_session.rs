//! Resident service mode end-to-end: keep a routing instance live and
//! drive it with a seeded open-loop workload plus a scripted churn
//! feed, then print the steady-state latency/hops/stretch report.
//!
//! ```sh
//! cargo run --release --example serve_session
//! ```
//!
//! The same loop backs `lr serve <spec.json>`; this example builds the
//! spec and feed in code to show the library surface. The rendered
//! report is bit-identical across runs and `threads` values — only the
//! `ServeRecord` (not printed here) carries wall-clock fields.

use lr_scenario::{parse_feed, run_serve, ScenarioSpec, ServeOptions};

fn main() {
    // An 8×8 grid served by the height-vector routing protocol. The
    // spec is the ordinary scenario schema — any protocol/topology
    // combination that `lr scenario run` accepts will serve.
    let spec = ScenarioSpec::from_json(
        r#"{
            "name": "serve-session-example",
            "protocol": "routing",
            "topology": {"family": "grid", "rows": 8, "cols": 8},
            "seeds": [42]
        }"#,
    )
    .expect("spec parses");

    // A scripted feed: fail a link mid-run, ask for a route while the
    // orientation is re-converging, then heal and ask again. The
    // generator keeps 10 requests/tick arriving around these events.
    let feed = parse_feed(concat!(
        "{\"at\": 20, \"fail\": [0, 1]}\n",
        "{\"at\": 24, \"route\": 63}\n",
        "{\"at\": 40, \"heal\": [0, 1]}\n",
        "{\"at\": 44, \"route\": 63}\n",
    ))
    .expect("feed parses");

    let options = ServeOptions {
        rate: 10,
        duration: 100,
        threads: 2,
        ..ServeOptions::default()
    };

    let report = run_serve(&spec, &options, &feed).expect("serve runs");
    print!("{}", report.render());

    assert_eq!(report.dropped, 0, "this workload fits the default queue");
    assert!(report.answered > 0, "the live orientation answered routes");
}
