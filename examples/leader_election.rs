//! Leader election by link reversal: the destination node crashes and the
//! survivors elect a replacement, re-orienting the DAG toward it.
//!
//! ```sh
//! cargo run --example leader_election
//! ```

use link_reversal::graph::generate;
use link_reversal::net::election::ElectionHarness;
use link_reversal::net::sim::LinkConfig;

fn main() {
    let inst = generate::random_connected(16, 18, 99);
    println!(
        "network: {} nodes, {} links; initial leader = destination {}",
        inst.node_count(),
        inst.graph.edge_count(),
        inst.dest
    );

    let mut harness = ElectionHarness::converged(&inst, LinkConfig::default(), 3);
    println!("DAG converged toward the initial leader.");

    println!("\n*** crash! leader {} goes down ***\n", inst.dest);
    harness.crash_leader();
    let report = harness.run(10_000_000);

    println!("new leader elected: {}", report.leader);
    println!("election epoch:     {}", report.epoch);
    println!(
        "reversals to re-orient the surviving DAG: {}",
        report.reversals
    );
    println!(
        "total messages (heights + proposals):     {}",
        report.messages
    );
    println!("\n(the harness verified that every survivor agrees on the leader");
    println!(" and that the surviving graph is destination-oriented toward it)");
}
