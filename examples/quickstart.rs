//! Quickstart: build an instance, run each algorithm, inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use link_reversal::prelude::*;

fn main() {
    // A 12-node chain with every edge directed away from the destination:
    // node 0 is the destination, node 11 the only sink.
    let inst = generate::chain_away(12);
    println!(
        "instance: {} nodes, {} edges, destination {}, {} bad nodes\n",
        inst.node_count(),
        inst.graph.edge_count(),
        inst.dest,
        inst.initial_bad_nodes()
    );

    println!(
        "{:>10} {:>8} {:>10} {:>7} {:>7}",
        "algorithm", "steps", "reversals", "rounds", "dummy"
    );
    for kind in AlgorithmKind::ALL {
        let mut engine = kind.engine(&inst);
        let stats = run_to_destination_oriented(
            engine.as_mut(),
            SchedulePolicy::GreedyRounds,
            DEFAULT_MAX_STEPS,
        );
        println!(
            "{:>10} {:>8} {:>10} {:>7} {:>7}",
            stats.algorithm, stats.steps, stats.total_reversals, stats.rounds, stats.dummy_steps
        );

        // Every algorithm ends acyclic and destination-oriented — the
        // paper's Theorem 4.3 / 5.5 territory.
        let o = engine.orientation();
        let view = DirectedView::new(&inst.graph, &o);
        assert!(view.is_acyclic());
        assert!(view.is_destination_oriented(inst.dest));
    }

    // Render the final NewPR graph as DOT for the curious.
    let mut engine = NewPrEngine::new(&inst);
    run_to_destination_oriented(&mut engine, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
    let o = engine.orientation();
    let view = DirectedView::new(&inst.graph, &o);
    println!(
        "\nfinal NewPR orientation (DOT):\n{}",
        link_reversal::graph::dot::to_dot(
            &view,
            &link_reversal::graph::dot::DotOptions {
                destination: Some(inst.dest),
                highlight_sinks: true,
                name: Some("converged".into()),
            }
        )
    );
}
