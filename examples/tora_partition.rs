//! TORA in action: route creation by QRY/UPD flood, local repair by a
//! new reference level, and partition detection by reflection — the full
//! life cycle of link-reversal routing.
//!
//! ```sh
//! cargo run --example tora_partition
//! ```

use link_reversal::graph::{NodeId, UndirectedGraph};
use link_reversal::net::sim::LinkConfig;
use link_reversal::net::tora::ToraHarness;

fn n(i: u32) -> NodeId {
    NodeId::new(i)
}

fn main() {
    // A ring with a tail:   0(D) — 1 — 2 — 3 — 0   and   3 — 4 — 5
    let g = UndirectedGraph::from_edges(&[(0, 1), (1, 2), (2, 3), (3, 0), (3, 4), (4, 5)]).unwrap();
    let mut tora = ToraHarness::new(&g, n(0), LinkConfig::default(), 7);

    println!("phase 1: route creation (QRY floods from nodes 1 and 5)");
    tora.create_route(n(1)); // routes 1 directly below the destination
    tora.create_route(n(5));
    for u in g.nodes() {
        println!("  height[{u}] = {:?}", tora.height(u));
    }
    assert!(tora.routed_nodes_reach_destination());

    println!("\nphase 2: link failure {{0,1}} — node 1 loses its only downstream");
    let before = tora.height(n(1)).unwrap();
    tora.fail_link(n(0), n(1));
    assert!(tora.routed_nodes_reach_destination());
    let after = tora.height(n(1)).unwrap();
    if after.tau > before.tau {
        println!("  node 1 generated a new reference level: {after:?}");
    } else {
        println!("  node 1 already had a detour; no new level needed: {after:?}");
    }
    println!(
        "  node 1 now routes via node 2: {}",
        after > tora.height(n(2)).unwrap()
    );

    println!("\nphase 3: partition — fail {{3,4}}, stranding {{4,5}}");
    tora.fail_link(n(3), n(4));
    println!(
        "  node 4 detected the partition: {}",
        tora.partition_detected(n(4))
    );
    println!("  height[4] = {:?} (erased)", tora.height(n(4)));
    println!("  height[5] = {:?} (erased)", tora.height(n(5)));

    println!("\nphase 4: the link heals; node 5 re-requests a route");
    tora.heal_link(n(3), n(4));
    tora.create_route(n(5));
    assert!(tora.routed_nodes_reach_destination());
    println!("  height[5] = {:?}", tora.height(n(5)));
    println!("\nloop-free at every instant — acyclicity is the paper's Theorem 4.3/5.5");
}
