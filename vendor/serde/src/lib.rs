//! Offline stand-in for `serde`, covering the API surface this
//! workspace uses.
//!
//! The build container has no crates.io access, so the workspace vendors
//! a minimal serde: the [`Serialize`] / [`Deserialize`] traits with the
//! standard generic signatures, derive macros for non-generic structs,
//! newtype structs, and fieldless enums, and impls for the primitives
//! and std collections the crates serialize. Instead of serde's visitor
//! architecture, values pass through a small self-describing
//! [`content::Content`] tree — sufficient because the only data format
//! in the workspace is the vendored `serde_json`.
//!
//! Call sites are written against real-serde signatures
//! (`fn serialize<S: Serializer>(&self, s: S)`), so swapping the real
//! crates back in is a `Cargo.toml`-only change.

pub mod content;
pub mod de;
pub mod ser;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};
// Derive macros live in a separate namespace from the traits, exactly
// like real serde's `derive` feature.
pub use serde_derive::{Deserialize, Serialize};
