//! Serialization: the [`Serialize`] / [`Serializer`] traits and the
//! primitive / collection impls.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;

use crate::content::Content;

/// Errors a [`Serializer`] can produce.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that consumes one [`Content`] tree per value.
///
/// Real serde drives the format through ~30 `serialize_*` methods; with
/// a single in-workspace format, one method carrying the whole
/// self-describing tree is equivalent and much smaller.
pub trait Serializer: Sized {
    /// Output of successful serialization.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes the value tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;
}

/// A value that can be serialized (same signature as real serde).
pub trait Serialize {
    /// Serializes `self` into the given format.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// Converts any serializable value into its [`Content`] tree,
/// propagating the caller's error type so that unrepresentable values
/// (e.g. a non-scalar map key) fail with an `Err` at any nesting depth
/// rather than only at the top level. Derive macros and collection
/// impls use it to serialize fields and elements.
pub fn to_content<T: Serialize + ?Sized, E: Error>(value: &T) -> Result<Content, E> {
    struct ContentSerializer<E> {
        _marker: std::marker::PhantomData<E>,
    }

    impl<E: Error> Serializer for ContentSerializer<E> {
        type Ok = Content;
        type Error = E;

        fn serialize_content(self, content: Content) -> Result<Content, E> {
            Ok(content)
        }
    }

    value.serialize(ContentSerializer {
        _marker: std::marker::PhantomData,
    })
}

macro_rules! impl_serialize_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(u64::from(*self)))
            }
        }
    )*};
}

impl_serialize_uint!(u8, u16, u32, u64);

macro_rules! impl_serialize_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let v = i64::from(*self);
                let content = if v < 0 {
                    Content::I64(v)
                } else {
                    Content::U64(v as u64)
                };
                serializer.serialize_content(content)
            }
        }
    )*};
}

impl_serialize_int!(i8, i16, i32, i64);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::U64(*self as u64))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (*self as i64).serialize(serializer)
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(f64::from(*self)))
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_owned()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        self.as_str().serialize(serializer)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl Serialize for () {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Null)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            None => serializer.serialize_content(Content::Null),
            Some(v) => v.serialize(serializer),
        }
    }
}

fn seq_content<'a, T, I, E>(items: I) -> Result<Content, E>
where
    T: Serialize + 'a,
    I: IntoIterator<Item = &'a T>,
    E: Error,
{
    items
        .into_iter()
        .map(to_content)
        .collect::<Result<_, _>>()
        .map(Content::Seq)
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(seq_content(self)?)
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(seq_content(self)?)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(seq_content(self)?)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(seq_content(self)?)
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(seq_content(self)?)
    }
}

fn map_content<'a, K, V, I, E>(entries: I) -> Result<Content, E>
where
    K: Serialize + 'a,
    V: Serialize + 'a,
    I: IntoIterator<Item = (&'a K, &'a V)>,
    E: Error,
{
    let mut out = Vec::new();
    for (k, v) in entries {
        let key = to_content(k)?
            .as_map_key()
            .ok_or_else(|| E::custom("map key must be a string or integer"))?;
        out.push((key, to_content(v)?));
    }
    Ok(Content::Map(out))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(map_content(self)?)
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(map_content(self)?)
    }
}

macro_rules! impl_serialize_tuple {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::Seq(vec![$(to_content(&self.$idx)?),+]))
            }
        }
    )*};
}

impl_serialize_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
