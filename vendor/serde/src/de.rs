//! Deserialization: the [`Deserialize`] / [`Deserializer`] traits and
//! the primitive / collection impls.

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;
use std::hash::Hash;
use std::marker::PhantomData;

use crate::content::Content;

/// Errors a [`Deserializer`] can produce.
pub trait Error: Sized + std::error::Error {
    /// Builds an error from a message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format that yields one [`Content`] tree per value.
///
/// The `'de` lifetime mirrors real serde's signature so that manual
/// impls (`impl<'de> Deserialize<'de> for …`) are source-compatible;
/// the stub always produces owned data.
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Produces the value tree for the value being deserialized.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A value constructible from a data format (same signature as serde).
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserializes a `T` from an already-extracted [`Content`] tree.
///
/// This is the workhorse used by collection impls and derive macros to
/// recurse into elements and fields.
pub fn from_content<'de, T: Deserialize<'de>, E: Error>(content: Content) -> Result<T, E> {
    struct ContentDeserializer<E> {
        content: Content,
        _marker: PhantomData<E>,
    }

    impl<'de, E: Error> Deserializer<'de> for ContentDeserializer<E> {
        type Error = E;

        fn take_content(self) -> Result<Content, E> {
            Ok(self.content)
        }
    }

    T::deserialize(ContentDeserializer {
        content,
        _marker: PhantomData,
    })
}

/// Removes the field `key` from a struct's entry list and deserializes
/// it; used by derived [`Deserialize`] impls.
pub fn take_field<'de, T: Deserialize<'de>, E: Error>(
    entries: &mut Vec<(String, Content)>,
    key: &str,
) -> Result<T, E> {
    match entries.iter().position(|(k, _)| k == key) {
        Some(i) => from_content(entries.swap_remove(i).1),
        None => Err(E::custom(format!("missing field `{key}`"))),
    }
}

fn unexpected<E: Error>(expected: &str, got: &Content) -> E {
    E::custom(format!("expected {expected}, found {}", got.kind()))
}

macro_rules! impl_deserialize_int {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.take_content()?;
                let out = match &content {
                    Content::U64(n) => <$t>::try_from(*n).ok(),
                    Content::I64(n) => <$t>::try_from(*n).ok(),
                    _ => None,
                };
                out.ok_or_else(|| {
                    unexpected(concat!("an integer fitting ", stringify!($t)), &content)
                })
            }
        }
    )*};
}

impl_deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Bool(b) => Ok(b),
            other => Err(unexpected("a boolean", &other)),
        }
    }
}

macro_rules! impl_deserialize_float {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_content()? {
                    Content::F64(x) => Ok(x as $t),
                    Content::U64(n) => Ok(n as $t),
                    Content::I64(n) => Ok(n as $t),
                    other => Err(unexpected("a number", &other)),
                }
            }
        }
    )*};
}

impl_deserialize_float!(f32, f64);

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Str(s) => Ok(s),
            other => Err(unexpected("a string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            other => Err(unexpected("a single-character string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for () {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Null => Ok(()),
            other => Err(unexpected("null", &other)),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Null => Ok(None),
            other => from_content(other).map(Some),
        }
    }
}

fn seq_elements<'de, T: Deserialize<'de>, E: Error>(content: Content) -> Result<Vec<T>, E> {
    match content {
        Content::Seq(items) => items.into_iter().map(from_content).collect(),
        other => Err(unexpected("a sequence", &other)),
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        seq_elements(deserializer.take_content()?)
    }
}

impl<'de, T: Deserialize<'de> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(seq_elements::<T, D::Error>(deserializer.take_content()?)?
            .into_iter()
            .collect())
    }
}

impl<'de, T: Deserialize<'de> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(seq_elements::<T, D::Error>(deserializer.take_content()?)?
            .into_iter()
            .collect())
    }
}

fn map_entries<'de, K, V, E>(content: Content) -> Result<Vec<(K, V)>, E>
where
    K: Deserialize<'de>,
    V: Deserialize<'de>,
    E: Error,
{
    match content {
        Content::Map(entries) => entries
            .into_iter()
            .map(|(k, v)| {
                // A JSON key is textually a string; integer-keyed maps
                // (serde_json's convention for e.g. `BTreeMap<u32, _>`)
                // need the numeric re-reading, but a genuinely
                // string-keyed map must win even when its keys look
                // numeric, so try the string shape first.
                let key = from_content(Content::Str(k.clone()))
                    .or_else(|_: E| from_content(Content::from_map_key(&k)))?;
                Ok((key, from_content(v)?))
            })
            .collect(),
        other => Err(unexpected("a map", &other)),
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(map_entries::<K, V, D::Error>(deserializer.take_content()?)?
            .into_iter()
            .collect())
    }
}

impl<'de, K: Deserialize<'de> + Eq + Hash, V: Deserialize<'de>> Deserialize<'de> for HashMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(map_entries::<K, V, D::Error>(deserializer.take_content()?)?
            .into_iter()
            .collect())
    }
}

macro_rules! impl_deserialize_tuple {
    ($(($len:literal : $($name:ident),+))*) => {$(
        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                match deserializer.take_content()? {
                    Content::Seq(items) if items.len() == $len => {
                        let mut iter = items.into_iter();
                        Ok(($(from_content::<$name, D::Error>(
                            iter.next().expect("length checked"),
                        )?,)+))
                    }
                    other => Err(unexpected(
                        concat!("a sequence of length ", stringify!($len)),
                        &other,
                    )),
                }
            }
        }
    )*};
}

impl_deserialize_tuple! {
    (1: T0)
    (2: T0, T1)
    (3: T0, T1, T2)
    (4: T0, T1, T2, T3)
    (5: T0, T1, T2, T3, T4)
    (6: T0, T1, T2, T3, T4, T5)
}
