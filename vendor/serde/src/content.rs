//! The self-describing value tree that serialization passes through.

/// A structured value: the stub's entire data model.
///
/// Maps keep insertion order in a `Vec` (JSON objects are ordered on
/// output; lookup during deserialization is by key, not position).
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// `null` / `None` / unit.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer (always `< 0`; non-negatives use [`Content::U64`]).
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string (also used for enum unit variants).
    Str(String),
    /// A sequence (`Vec`, slice, tuple, set).
    Seq(Vec<Content>),
    /// A map or struct: ordered `(key, value)` pairs.
    Map(Vec<(String, Content)>),
}

impl Content {
    /// The key string this value becomes when used as a map key.
    ///
    /// JSON objects require string keys; like real `serde_json`, integer
    /// and string keys are allowed and anything else is an error.
    pub fn as_map_key(&self) -> Option<String> {
        match self {
            Content::Str(s) => Some(s.clone()),
            Content::U64(n) => Some(n.to_string()),
            Content::I64(n) => Some(n.to_string()),
            _ => None,
        }
    }

    /// Parses a map-key string back into a value (inverse of
    /// [`Content::as_map_key`]): integers when they look like one,
    /// otherwise a string.
    pub fn from_map_key(key: &str) -> Content {
        if let Ok(n) = key.parse::<u64>() {
            Content::U64(n)
        } else if let Ok(n) = key.parse::<i64>() {
            Content::I64(n)
        } else {
            Content::Str(key.to_owned())
        }
    }

    /// A short description of the value's kind, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Content::Null => "null",
            Content::Bool(_) => "boolean",
            Content::U64(_) | Content::I64(_) => "integer",
            Content::F64(_) => "number",
            Content::Str(_) => "string",
            Content::Seq(_) => "sequence",
            Content::Map(_) => "map",
        }
    }
}
