//! Offline stand-in for `crossbeam`, exposing the [`channel`] module
//! this workspace uses, implemented over [`std::sync::mpsc`].
//!
//! The real crossbeam channel is MPMC; this stub keeps the MPSC
//! std semantics, which suffice for the one-receiver-per-node topology
//! in `lr-net`'s threaded mode.

pub mod channel {
    //! Unbounded channels with crossbeam's naming.

    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel (cloneable).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Non-blocking receive; `None` when currently empty (or closed).
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::unbounded;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41).unwrap());
            std::thread::spawn(move || tx.send(1).unwrap());
            let sum: i32 = (0..2).map(|_| rx.recv().unwrap()).sum();
            assert_eq!(sum, 42);
            assert!(rx.try_recv().is_none());
        }
    }
}
