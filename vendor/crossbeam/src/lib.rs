//! Offline stand-in for `crossbeam`, exposing the [`channel`] and
//! [`thread`] modules this workspace uses, implemented over
//! [`std::sync::mpsc`] and [`std::thread::scope`] respectively.
//!
//! The real crossbeam channel is MPMC; this stub keeps the MPSC
//! std semantics, which suffice for the one-receiver-per-node topology
//! in `lr-net`'s threaded mode. The scoped-thread API matches the real
//! crate's signatures (`scope(|s| …)` returning a `Result`, spawn
//! closures receiving `&Scope`), with one documented divergence: a
//! panicking child thread re-panics in the parent on join (std
//! semantics) instead of surfacing as the scope's `Err`.

pub mod thread {
    //! Scoped threads with crossbeam's API shape over
    //! [`std::thread::scope`].

    /// Join result: `Ok` or the child's panic payload.
    pub type Result<T> = std::thread::Result<T>;

    /// A scope handle for spawning threads that may borrow from the
    /// caller's stack. Obtained through [`scope`]; spawn closures
    /// receive a fresh `&Scope` so they can spawn siblings, matching the
    /// real crate.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Clone for Scope<'scope, 'env> {
        fn clone(&self) -> Self {
            *self
        }
    }

    impl<'scope, 'env> Copy for Scope<'scope, 'env> {}

    /// A handle to a scoped thread, joinable before the scope closes.
    /// Unjoined threads are joined automatically when the scope ends.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish, returning its result (or the
        /// panic payload).
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives this scope so it
        /// can spawn further threads (crossbeam's signature).
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let scope = *self;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&scope)),
            }
        }
    }

    /// Creates a scope in which threads borrowing the environment can be
    /// spawned; all spawned threads are joined before `scope` returns.
    ///
    /// # Errors
    ///
    /// The real crate reports child panics as `Err`; this stub
    /// propagates them as panics (std semantics) and otherwise always
    /// returns `Ok`.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }

    #[cfg(test)]
    mod tests {
        use super::scope;

        #[test]
        fn scoped_threads_borrow_and_join() {
            let data = [1u64, 2, 3, 4, 5, 6, 7, 8];
            let mut partial = [0u64; 2];
            scope(|s| {
                let (a, b) = partial.split_at_mut(1);
                let (lo, hi) = data.split_at(4);
                s.spawn(move |_| a[0] = lo.iter().sum());
                s.spawn(move |_| b[0] = hi.iter().sum());
            })
            .unwrap();
            assert_eq!(partial.iter().sum::<u64>(), 36);
        }

        #[test]
        fn nested_spawn_through_scope_argument() {
            let total = scope(|s| {
                let h = s.spawn(|inner| {
                    let g = inner.spawn(|_| 21u32);
                    g.join().unwrap() * 2
                });
                h.join().unwrap()
            })
            .unwrap();
            assert_eq!(total, 42);
        }
    }
}

pub mod channel {
    //! Unbounded channels with crossbeam's naming.

    use std::fmt;
    use std::sync::mpsc;

    /// Error returned by [`Sender::send`] when the receiver is gone;
    /// carries the unsent message.
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when all senders are gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty, disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// The sending half of an unbounded channel (cloneable).
    pub struct Sender<T> {
        inner: mpsc::Sender<T>,
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            Sender {
                inner: self.inner.clone(),
            }
        }
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, failing only if the receiver was dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            self.inner
                .send(msg)
                .map_err(|mpsc::SendError(m)| SendError(m))
        }
    }

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T> {
        inner: mpsc::Receiver<T>,
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or every sender is dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            self.inner.recv().map_err(|mpsc::RecvError| RecvError)
        }

        /// Non-blocking receive; `None` when currently empty (or closed).
        pub fn try_recv(&self) -> Option<T> {
            self.inner.try_recv().ok()
        }
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let (tx, rx) = mpsc::channel();
        (Sender { inner: tx }, Receiver { inner: rx })
    }

    #[cfg(test)]
    mod tests {
        use super::unbounded;

        #[test]
        fn send_recv_across_threads() {
            let (tx, rx) = unbounded();
            let tx2 = tx.clone();
            std::thread::spawn(move || tx2.send(41).unwrap());
            std::thread::spawn(move || tx.send(1).unwrap());
            let sum: i32 = (0..2).map(|_| rx.recv().unwrap()).sum();
            assert_eq!(sum, 42);
            assert!(rx.try_recv().is_none());
        }
    }
}
