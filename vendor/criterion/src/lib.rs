//! Offline stand-in for `criterion`, covering the macro and method
//! surface this workspace's benches use.
//!
//! There is no statistical analysis, HTML report, or baseline storage:
//! each benchmark warms up briefly, then runs enough iterations to fill
//! a fixed measurement window and prints the mean iteration time. The
//! numbers are honest wall-clock means — good enough to compare hot
//! paths PR-over-PR in this container — and the bench sources remain
//! fully compatible with the real crate.

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    hint::black_box(value)
}

/// Top-level benchmark driver (stub: only grouping and printing).
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(&id.to_string(), f);
    }
}

/// A named set of benchmarks sharing an output prefix.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        run_one(&format!("{}/{}", self.name, id), f);
    }

    /// Benchmarks `f` with a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        run_one(&format!("{}/{}", self.name, id.0), |b| f(b, input));
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// A benchmark identifier: function name plus parameter.
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// Builds an id like `"name/param"`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }
}

/// Measures closures handed to it by a benchmark function.
pub struct Bencher {
    measured: Option<(Duration, u64)>,
}

/// `LR_BENCH_SMOKE=1` switches every bench to a single timed sample with
/// no warmup — the CI smoke mode that keeps benchmark code compiling and
/// running without paying for statistical windows.
fn smoke_mode() -> bool {
    static SMOKE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *SMOKE.get_or_init(|| std::env::var("LR_BENCH_SMOKE").is_ok_and(|v| !v.is_empty() && v != "0"))
}

impl Bencher {
    /// Times `routine`, first warming up, then measuring for a fixed
    /// window; records total time and iteration count. Under
    /// `LR_BENCH_SMOKE=1` it takes exactly one sample instead.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        const WARMUP: Duration = Duration::from_millis(20);
        const MEASURE: Duration = Duration::from_millis(120);

        if smoke_mode() {
            let start = Instant::now();
            black_box(routine());
            self.measured = Some((start.elapsed(), 1));
            return;
        }

        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < WARMUP {
            black_box(routine());
            warm_iters += 1;
        }

        // Aim for ~50 timed batches based on the warmed-up rate.
        let per_iter = warm_start.elapsed().as_nanos() as u64 / warm_iters.max(1);
        let batch = (MEASURE.as_nanos() as u64 / 50 / per_iter.max(1)).max(1);

        let mut iters: u64 = 0;
        let start = Instant::now();
        while start.elapsed() < MEASURE {
            for _ in 0..batch {
                black_box(routine());
            }
            iters += batch;
        }
        self.measured = Some((start.elapsed(), iters));
    }
}

fn run_one<F: FnMut(&mut Bencher)>(label: &str, mut f: F) {
    let mut bencher = Bencher { measured: None };
    f(&mut bencher);
    match bencher.measured {
        Some((total, iters)) if iters > 0 => {
            let mean = total.as_nanos() as f64 / iters as f64;
            println!(
                "{label:<60} {:>14} /iter ({iters} iters)",
                format_nanos(mean)
            );
        }
        _ => println!("{label:<60} (no measurement)"),
    }
}

fn format_nanos(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.2} s", ns / 1_000_000_000.0)
    }
}

/// Declares a group function running each target in order.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
