//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for
//! the shapes this workspace actually derives on:
//!
//! * non-generic structs with named fields → JSON-style map keyed by
//!   field name;
//! * one-field tuple structs (newtypes) → transparent delegation to the
//!   inner value (so `NodeId(42)` serializes as `42`, like real serde);
//! * enums whose variants all carry no data → the variant name as a
//!   string (serde's externally-tagged unit-variant encoding).
//!
//! Anything else (generics, multi-field tuple structs, data-carrying
//! variants, `#[serde(...)]` attributes) is rejected with a compile
//! error naming this file, rather than silently mis-encoding.
//!
//! Parsing is done directly on the `proc_macro` token stream — the
//! container build has no `syn`/`quote` — and the generated impls are
//! assembled as strings and re-parsed, which `proc_macro` supports
//! natively.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// The subset of item shapes the derives understand.
enum Item {
    NamedStruct { name: String, fields: Vec<String> },
    NewtypeStruct { name: String },
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives `serde::Serialize` (stub dialect) for supported shapes.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let mut pushes = String::new();
            for f in fields {
                pushes.push_str(&format!(
                    "fields.push((\"{f}\".to_owned(), \
                     ::serde::ser::to_content::<_, S::Error>(&self.{f})?));\n"
                ));
            }
            format!(
                "let mut fields = ::std::vec::Vec::new();\n{pushes}\
                 serializer.serialize_content(::serde::content::Content::Map(fields))"
            )
        }
        Item::NewtypeStruct { .. } => "::serde::Serialize::serialize(&self.0, serializer)".into(),
        Item::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("{name}::{v} => \"{v}\",\n"))
                .collect();
            format!(
                "let variant = match self {{\n{arms}}};\n\
                 serializer.serialize_content(::serde::content::Content::Str(variant.to_owned()))"
            )
        }
    };
    let name = item_name(&item);
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
         -> ::core::result::Result<S::Ok, S::Error> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Serialize impl parses")
}

/// Derives `serde::Deserialize` (stub dialect) for supported shapes.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    let name = item_name(&item);
    let body = match &item {
        Item::NamedStruct { fields, .. } => {
            let takes: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::take_field(&mut entries, \"{f}\")?,\n"))
                .collect();
            format!(
                "let mut entries = match deserializer.take_content()? {{\n\
                     ::serde::content::Content::Map(entries) => entries,\n\
                     other => return ::core::result::Result::Err(\n\
                         <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                             \"expected map for struct {name}, found {{}}\", other.kind()))),\n\
                 }};\n\
                 ::core::result::Result::Ok({name} {{\n{takes}}})"
            )
        }
        Item::NewtypeStruct { .. } => format!(
            "let content = deserializer.take_content()?;\n\
             ::core::result::Result::Ok({name}(::serde::de::from_content(content)?))"
        ),
        Item::UnitEnum { variants, .. } => {
            let arms: String = variants
                .iter()
                .map(|v| format!("\"{v}\" => ::core::result::Result::Ok({name}::{v}),\n"))
                .collect();
            format!(
                "let content = deserializer.take_content()?;\n\
                 let s = match &content {{\n\
                     ::serde::content::Content::Str(s) => s.as_str(),\n\
                     other => return ::core::result::Result::Err(\n\
                         <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                             \"expected string variant of {name}, found {{}}\", other.kind()))),\n\
                 }};\n\
                 match s {{\n{arms}\
                     other => ::core::result::Result::Err(\n\
                         <D::Error as ::serde::de::Error>::custom(::std::format!(\n\
                             \"unknown {name} variant {{other:?}}\"))),\n\
                 }}"
            )
        }
    };
    format!(
        "impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
         fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
         -> ::core::result::Result<Self, D::Error> {{\n{body}\n}}\n}}\n"
    )
    .parse()
    .expect("generated Deserialize impl parses")
}

fn item_name(item: &Item) -> &str {
    match item {
        Item::NamedStruct { name, .. }
        | Item::NewtypeStruct { name }
        | Item::UnitEnum { name, .. } => name,
    }
}

/// Skips attributes (`#[...]`, doc comments) and visibility at the
/// current position, rejecting `#[serde(...)]`: the stub implements no
/// serde attribute, and silently ignoring one would mis-encode.
fn skip_attrs_and_vis(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    loop {
        match tokens.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                tokens.next();
                if let Some(TokenTree::Group(g)) = tokens.next() {
                    let is_serde = matches!(
                        g.stream().into_iter().next(),
                        Some(TokenTree::Ident(id)) if id.to_string() == "serde"
                    );
                    if is_serde {
                        panic!(
                            "serde stub derive: #[serde(...)] attributes are not supported \
                             (see vendor/serde_derive/src/lib.rs)"
                        );
                    }
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                tokens.next();
                // optional `(crate)` / `(super)` restriction
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            _ => break,
        }
    }
}

/// Parses the derive input item into one of the supported shapes,
/// panicking (= compile error at the derive site) on anything else.
fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    skip_attrs_and_vis(&mut tokens);

    let kind = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected `struct` or `enum`, got {other:?}"),
    };
    let name = match tokens.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde stub derive: expected item name, got {other:?}"),
    };
    if matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!(
            "serde stub derive: generic type `{name}` is not supported \
             (see vendor/serde_derive/src/lib.rs)"
        );
    }

    let body = match tokens.next() {
        Some(TokenTree::Group(g)) => g,
        other => panic!("serde stub derive: expected item body for `{name}`, got {other:?}"),
    };

    match (kind.as_str(), body.delimiter()) {
        ("struct", Delimiter::Brace) => Item::NamedStruct {
            fields: parse_named_fields(&name, body.stream()),
            name,
        },
        ("struct", Delimiter::Parenthesis) => {
            let fields = count_tuple_fields(body.stream());
            if fields != 1 {
                panic!(
                    "serde stub derive: tuple struct `{name}` has {fields} fields; \
                     only 1-field newtypes are supported"
                );
            }
            Item::NewtypeStruct { name }
        }
        ("enum", Delimiter::Brace) => Item::UnitEnum {
            variants: parse_unit_variants(&name, body.stream()),
            name,
        },
        _ => panic!("serde stub derive: unsupported item shape for `{name}`"),
    }
}

/// Extracts field names from `{ vis name: Type, ... }`.
fn parse_named_fields(owner: &str, stream: TokenStream) -> Vec<String> {
    let mut fields = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(field) = tree else {
            panic!("serde stub derive: expected field name in `{owner}`, got {tree:?}");
        };
        fields.push(field.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde stub derive: expected `:` in `{owner}`, got {other:?}"),
        }
        // Skip the type: consume until a top-level comma. Angle brackets
        // need manual depth tracking ('<'/'>' are plain puncts).
        let mut depth = 0i32;
        for tree in tokens.by_ref() {
            match &tree {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => break,
                _ => {}
            }
        }
    }
    fields
}

/// Counts top-level comma-separated fields of a tuple struct body.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut count = 0usize;
    let mut depth = 0i32;
    let mut saw_token = false;
    for tree in stream {
        match &tree {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                count += 1;
                saw_token = false;
                continue;
            }
            _ => {}
        }
        saw_token = true;
    }
    count + usize::from(saw_token)
}

/// Extracts variant names from `{ A, B, ... }`, rejecting payloads.
fn parse_unit_variants(owner: &str, stream: TokenStream) -> Vec<String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        skip_attrs_and_vis(&mut tokens);
        let Some(tree) = tokens.next() else { break };
        let TokenTree::Ident(variant) = &tree else {
            panic!("serde stub derive: expected variant name in `{owner}`, got {tree:?}");
        };
        variants.push(variant.to_string());
        match tokens.next() {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!(
                "serde stub derive: enum `{owner}` variant `{variant}` carries data \
                 or uses unsupported syntax ({other:?}); only unit variants are supported"
            ),
        }
    }
    variants
}
