//! A dynamically typed JSON value, mirroring `serde_json::Value`.
//!
//! The subset implemented here is what the workspace needs to inspect
//! JSON whose shape is not known at compile time (the scenario engine's
//! declarative specs): the [`Value`] enum itself, the opaque [`Number`]
//! wrapper, the [`Map`] alias (sorted keys, like real serde_json's
//! default `Map`), `Serialize`/`Deserialize` impls so a `Value` can sit
//! anywhere a typed value can, the usual `as_*` accessors, and
//! `Display` as compact JSON.

use std::collections::BTreeMap;
use std::fmt;

use serde::content::Content;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

/// The map type used for JSON objects: sorted keys, matching real
/// serde_json's default (non-`preserve_order`) behaviour.
pub type Map<K = String, V = Value> = BTreeMap<K, V>;

/// A JSON number: a non-negative integer, a negative integer, or a
/// float — the same three-way split real serde_json stores internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Number {
    n: N,
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum N {
    PosInt(u64),
    /// Always `< 0`.
    NegInt(i64),
    Float(f64),
}

impl Number {
    /// The number as a `u64`, when it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self.n {
            N::PosInt(n) => Some(n),
            _ => None,
        }
    }

    /// The number as an `i64`, when it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self.n {
            N::PosInt(n) => i64::try_from(n).ok(),
            N::NegInt(n) => Some(n),
            N::Float(_) => None,
        }
    }

    /// The number as an `f64` (always representable, like real
    /// serde_json).
    pub fn as_f64(&self) -> Option<f64> {
        match self.n {
            N::PosInt(n) => Some(n as f64),
            N::NegInt(n) => Some(n as f64),
            N::Float(f) => Some(f),
        }
    }

    /// Whether the number is a non-negative integer.
    pub fn is_u64(&self) -> bool {
        matches!(self.n, N::PosInt(_))
    }

    /// Whether the number is an integer representable as `i64`.
    pub fn is_i64(&self) -> bool {
        self.as_i64().is_some()
    }

    /// Whether the number is stored as a float.
    pub fn is_f64(&self) -> bool {
        matches!(self.n, N::Float(_))
    }
}

impl From<u64> for Number {
    fn from(n: u64) -> Self {
        Number { n: N::PosInt(n) }
    }
}

impl From<i64> for Number {
    fn from(n: i64) -> Self {
        if n < 0 {
            Number { n: N::NegInt(n) }
        } else {
            Number {
                n: N::PosInt(n as u64),
            }
        }
    }
}

impl From<u32> for Number {
    fn from(n: u32) -> Self {
        Number::from(u64::from(n))
    }
}

impl From<usize> for Number {
    fn from(n: usize) -> Self {
        Number::from(n as u64)
    }
}

impl From<f64> for Number {
    fn from(f: f64) -> Self {
        Number { n: N::Float(f) }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.n {
            N::PosInt(n) => write!(f, "{n}"),
            N::NegInt(n) => write!(f, "{n}"),
            N::Float(x) => write!(f, "{x}"),
        }
    }
}

/// A JSON value of unknown shape.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// JSON `true` / `false`.
    Bool(bool),
    /// A JSON number.
    Number(Number),
    /// A JSON string.
    String(String),
    /// A JSON array.
    Array(Vec<Value>),
    /// A JSON object (sorted keys).
    Object(Map<String, Value>),
}

impl Value {
    /// Member `key` of an object (`None` for non-objects and missing
    /// keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    /// The value as a signed integer.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    /// The value as a float (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The value as an object.
    pub fn as_object(&self) -> Option<&Map<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether the value is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// A short description of the value's kind, for error messages
    /// (stub extension; real serde_json spells this differently).
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Number(_) => "number",
            Value::String(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}

impl From<u64> for Value {
    fn from(n: u64) -> Self {
        Value::Number(Number::from(n))
    }
}

impl From<u32> for Value {
    fn from(n: u32) -> Self {
        Value::Number(Number::from(n))
    }
}

impl From<usize> for Value {
    fn from(n: usize) -> Self {
        Value::Number(Number::from(n))
    }
}

impl From<i64> for Value {
    fn from(n: i64) -> Self {
        Value::Number(Number::from(n))
    }
}

impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Number(Number::from(f))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::String(s.to_owned())
    }
}

impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::String(s)
    }
}

impl<T: Into<Value>> From<Vec<T>> for Value {
    fn from(v: Vec<T>) -> Self {
        Value::Array(v.into_iter().map(Into::into).collect())
    }
}

impl From<Map<String, Value>> for Value {
    fn from(m: Map<String, Value>) -> Self {
        Value::Object(m)
    }
}

fn value_to_content(value: &Value) -> Content {
    match value {
        Value::Null => Content::Null,
        Value::Bool(b) => Content::Bool(*b),
        Value::Number(n) => match n.n {
            N::PosInt(u) => Content::U64(u),
            N::NegInt(i) => Content::I64(i),
            N::Float(f) => Content::F64(f),
        },
        Value::String(s) => Content::Str(s.clone()),
        Value::Array(items) => Content::Seq(items.iter().map(value_to_content).collect()),
        Value::Object(map) => Content::Map(
            map.iter()
                .map(|(k, v)| (k.clone(), value_to_content(v)))
                .collect(),
        ),
    }
}

fn content_to_value(content: Content) -> Value {
    match content {
        Content::Null => Value::Null,
        Content::Bool(b) => Value::Bool(b),
        Content::U64(n) => Value::Number(Number::from(n)),
        Content::I64(n) => Value::Number(Number::from(n)),
        Content::F64(f) => Value::Number(Number::from(f)),
        Content::Str(s) => Value::String(s),
        Content::Seq(items) => Value::Array(items.into_iter().map(content_to_value).collect()),
        Content::Map(entries) => Value::Object(
            entries
                .into_iter()
                .map(|(k, v)| (k, content_to_value(v)))
                .collect(),
        ),
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(value_to_content(self))
    }
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        // Duplicate object keys collapse last-wins (the BTreeMap
        // insert), matching real serde_json's Value behaviour.
        Ok(content_to_value(deserializer.take_content()?))
    }
}

impl fmt::Display for Value {
    /// Writes the value as compact JSON, exactly like
    /// `serde_json::to_string` would.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match crate::to_string(self) {
            Ok(s) => f.write_str(&s),
            Err(_) => Err(fmt::Error),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_round_trips_through_json() {
        let text = r#"{"b":[1,-2,2.5],"a":{"x":null,"y":true},"s":"hi"}"#;
        let v: Value = crate::from_str(text).unwrap();
        assert_eq!(v.get("s").and_then(Value::as_str), Some("hi"));
        let arr = v.get("b").and_then(Value::as_array).unwrap();
        assert_eq!(arr[0].as_u64(), Some(1));
        assert_eq!(arr[1].as_i64(), Some(-2));
        assert_eq!(arr[2].as_f64(), Some(2.5));
        assert!(v.get("a").unwrap().get("x").unwrap().is_null());
        // Re-serialization is canonical (sorted keys) and stable.
        let s1 = crate::to_string(&v).unwrap();
        let v2: Value = crate::from_str(&s1).unwrap();
        let s2 = crate::to_string(&v2).unwrap();
        assert_eq!(s1, s2);
        assert_eq!(v, v2);
    }

    #[test]
    fn display_is_compact_json() {
        let v: Value = crate::from_str(r#"{ "k" : [ 1, 2 ] }"#).unwrap();
        assert_eq!(v.to_string(), r#"{"k":[1,2]}"#);
    }

    #[test]
    fn accessors_reject_wrong_kinds() {
        let v = Value::from("text");
        assert_eq!(v.as_u64(), None);
        assert_eq!(v.as_bool(), None);
        assert_eq!(v.get("missing"), None);
        assert_eq!(v.kind(), "string");
        assert_eq!(Value::Null.kind(), "null");
    }

    #[test]
    fn number_conversions() {
        let n = Number::from(7u64);
        assert!(n.is_u64() && n.is_i64() && !n.is_f64());
        assert_eq!(n.as_f64(), Some(7.0));
        let m = Number::from(-3i64);
        assert!(!m.is_u64());
        assert_eq!(m.as_i64(), Some(-3));
        let f = Number::from(0.5);
        assert_eq!(f.as_i64(), None);
        assert_eq!(f.as_f64(), Some(0.5));
        // Non-negative i64s normalize to the PosInt repr, like real
        // serde_json.
        assert!(Number::from(5i64).is_u64());
    }

    #[test]
    fn value_nests_inside_typed_containers() {
        let v: Vec<Value> = crate::from_str(r#"[null, 3, "x"]"#).unwrap();
        assert_eq!(v.len(), 3);
        let json = crate::to_string(&v).unwrap();
        assert_eq!(json, r#"[null,3,"x"]"#);
    }
}
