//! JSON emission (compact and pretty).

use serde::content::Content;

pub fn write_compact(out: &mut String, content: &Content) {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Content::U64(n) => out.push_str(&n.to_string()),
        Content::I64(n) => out.push_str(&n.to_string()),
        Content::F64(x) => write_f64(out, *x),
        Content::Str(s) => write_string(out, s),
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_compact(out, item);
            }
            out.push(']');
        }
        Content::Map(entries) => {
            out.push('{');
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_compact(out, v);
            }
            out.push('}');
        }
    }
}

pub fn write_pretty(out: &mut String, content: &Content, indent: usize) {
    match content {
        Content::Seq(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_pretty(out, item, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push(']');
        }
        Content::Map(entries) if !entries.is_empty() => {
            out.push_str("{\n");
            for (i, (k, v)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, indent + 1);
                write_string(out, k);
                out.push_str(": ");
                write_pretty(out, v, indent + 1);
            }
            out.push('\n');
            push_indent(out, indent);
            out.push('}');
        }
        other => write_compact(out, other),
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        // `{:?}` prints the shortest representation that round-trips,
        // keeping a trailing `.0` on integral values like serde_json.
        out.push_str(&format!("{x:?}"));
    } else {
        // JSON has no NaN/Infinity; serde_json writes null.
        out.push_str("null");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}
