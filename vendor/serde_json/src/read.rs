//! A recursive-descent JSON parser producing the serde stub's
//! [`Content`] tree.

use serde::content::Content;

use crate::Error;

pub fn parse(input: &str) -> Result<Content, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let value = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> Error {
        Error::new(format!("{msg} at byte {}", self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Content) -> Result<Content, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("invalid literal, expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Content, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Content::Null),
            Some(b't') => self.literal("true", Content::Bool(true)),
            Some(b'f') => self.literal("false", Content::Bool(false)),
            Some(b'"') => Ok(Content::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Content, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Content, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(entries));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&first) {
                                // High surrogate: require the paired low
                                // surrogate escape.
                                if self.peek() != Some(b'\\') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.pos += 1;
                                let second = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((first - 0xd800) << 10) + (second - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            continue;
                        }
                        _ => return Err(self.err("invalid escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(b) => {
                    // Consume one UTF-8 character. The input is a &str,
                    // so sequences are valid; the leading byte gives the
                    // width directly (no need to re-validate the whole
                    // remainder, which would make long strings O(n²)).
                    let width = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = &self.bytes[self.pos..self.pos + width];
                    let s = std::str::from_utf8(chunk).expect("input is valid utf-8");
                    out.push_str(s);
                    self.pos += width;
                }
            }
        }
    }

    /// Reads exactly four hex digits (after `\u`).
    fn hex4(&mut self) -> Result<u32, Error> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Content, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number text");
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Content::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Content::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Content::F64)
            .map_err(|_| self.err("invalid number"))
    }
}
