//! Offline stand-in for `serde_json`: [`to_string`], [`to_string_pretty`]
//! and [`from_str`] over the vendored `serde` stub's content model.
//!
//! The emitted JSON is standard (escaped strings, `null`, numbers,
//! arrays, objects); the parser accepts standard JSON including nested
//! structures, escape sequences, and scientific-notation numbers.
//! Integer keys on maps follow real serde_json's convention of being
//! written as JSON strings.

use std::fmt;

use serde::content::Content;
use serde::{Deserialize, Serialize};

mod read;
pub mod value;
mod write;

pub use value::{Map, Number, Value};

/// A serialization or parse error, with a human-readable message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl serde::ser::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::de::Error for Error {
    fn custom<T: fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

struct JsonSerializer {
    pretty: bool,
}

impl serde::Serializer for JsonSerializer {
    type Ok = String;
    type Error = Error;

    fn serialize_content(self, content: Content) -> Result<String, Error> {
        let mut out = String::new();
        if self.pretty {
            write::write_pretty(&mut out, &content, 0);
        } else {
            write::write_compact(&mut out, &content);
        }
        Ok(out)
    }
}

/// Serializes `value` as compact JSON.
///
/// # Errors
///
/// Fails only on unrepresentable values (e.g. a map with a non-scalar
/// key).
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    value.serialize(JsonSerializer { pretty: false })
}

/// Serializes `value` as two-space-indented JSON.
///
/// # Errors
///
/// Same failure cases as [`to_string`].
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    value.serialize(JsonSerializer { pretty: true })
}

struct JsonDeserializer {
    content: Content,
}

impl<'de> serde::Deserializer<'de> for JsonDeserializer {
    type Error = Error;

    fn take_content(self) -> Result<Content, Error> {
        Ok(self.content)
    }
}

/// Parses a value from a JSON string.
///
/// # Errors
///
/// Fails on malformed JSON, trailing input, or a shape mismatch with
/// `T`.
pub fn from_str<'de, T: Deserialize<'de>>(input: &str) -> Result<T, Error> {
    let content = read::parse(input)?;
    T::deserialize(JsonDeserializer { content })
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeMap;

    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string("hi\n\"there\"").unwrap(), r#""hi\n\"there\"""#);
        assert_eq!(from_str::<u32>("42").unwrap(), 42);
        assert_eq!(from_str::<i64>("-7").unwrap(), -7);
        assert_eq!(from_str::<String>(r#""hiA""#).unwrap(), "hiA");
    }

    #[test]
    fn collections_round_trip() {
        let v = vec![(1u32, 2u32), (3, 4)];
        let json = to_string(&v).unwrap();
        assert_eq!(json, "[[1,2],[3,4]]");
        assert_eq!(from_str::<Vec<(u32, u32)>>(&json).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert(10u32, vec![1u8, 2]);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"10":[1,2]}"#);
        assert_eq!(from_str::<BTreeMap<u32, Vec<u8>>>(&json).unwrap(), m);
    }

    #[test]
    fn string_keys_that_look_numeric_stay_strings() {
        let mut m = BTreeMap::new();
        m.insert("42".to_string(), 1u8);
        let json = to_string(&m).unwrap();
        assert_eq!(json, r#"{"42":1}"#);
        assert_eq!(from_str::<BTreeMap<String, u8>>(&json).unwrap(), m);
    }

    #[test]
    fn unrepresentable_map_keys_error_at_any_depth() {
        let top = BTreeMap::from([((1u32, 2u32), 3u8)]);
        assert!(to_string(&top).is_err());
        // Nested inside a Vec the same shape must still be an Err, not a
        // panic.
        assert!(to_string(&vec![top]).is_err());
    }

    #[test]
    fn long_strings_with_multibyte_chars_parse() {
        let original: String = "héllo wörld ∂x ".repeat(2_000);
        let json = to_string(&original).unwrap();
        assert_eq!(from_str::<String>(&json).unwrap(), original);
    }

    #[test]
    fn pretty_output_indents() {
        let v = vec![1u8, 2];
        assert_eq!(to_string_pretty(&v).unwrap(), "[\n  1,\n  2\n]");
    }

    #[test]
    fn floats_and_exponents_parse() {
        assert_eq!(from_str::<f64>("2.5e2").unwrap(), 250.0);
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<u32>("").is_err());
        assert!(from_str::<u32>("42 trailing").is_err());
        assert!(from_str::<u32>("{unquoted: 1}").is_err());
        assert!(from_str::<Vec<u8>>("[1, 2").is_err());
    }
}
