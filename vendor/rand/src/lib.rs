//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no access to crates.io, so this workspace
//! vendors the exact API surface it uses: [`rngs::SmallRng`],
//! [`SeedableRng::seed_from_u64`], [`Rng::gen_range`] over integer
//! ranges, [`Rng::gen_bool`], and [`seq::SliceRandom`]. The generator is
//! a splitmix64-seeded xorshift64* — deterministic for a given seed,
//! statistically adequate for the randomized tests and generators here,
//! and *not* cryptographic (neither is the real `SmallRng`).
//!
//! Swapping back to the real crate is a one-line change in the root
//! `Cargo.toml`; no call site mentions this stub.

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next word of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 bits of the stream.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Range types that [`Rng::gen_range`] can sample from.
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (uniform_u64(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (uniform_u64(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

/// Uniform value in `0..span` by rejection sampling (`span > 0`).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    if span.is_power_of_two() {
        return rng.next_u64() & (span - 1);
    }
    // Largest multiple of span that fits in u64; reject above it.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

/// Convenience sampling methods layered over [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform value from an integer range (`a..b` or `a..=b`).
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli trial with success probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        // 53 random mantissa bits → uniform in [0, 1).
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<T: RngCore> Rng for T {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator (xorshift64* with
    /// splitmix64 seeding), mirroring `rand::rngs::SmallRng`.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        state: u64,
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // splitmix64 scramble so that close seeds give unrelated
            // streams; guard against the all-zero xorshift fixpoint.
            let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            SmallRng {
                state: if z == 0 { 0x4d59_5df4_d0f3_3173 } else { z },
            }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let mut x = self.state;
            x ^= x >> 12;
            x ^= x << 25;
            x ^= x >> 27;
            self.state = x;
            x.wrapping_mul(0x2545_f491_4f6c_dd1d)
        }
    }
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{uniform_u64, Rng};

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Uniformly random element, or `None` if empty.
        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// In-place Fisher–Yates shuffle.
        fn shuffle<R: Rng>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_u64(rng, self.len() as u64) as usize)
            }
        }

        fn shuffle<R: Rng>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn determinism() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(0u64..=5);
            assert!(w <= 5);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
