//! Offline stand-in for `parking_lot`, implemented over [`std::sync`].
//!
//! Only [`Mutex`] is provided (the one type this workspace uses). The
//! semantic difference from `std` that call sites rely on is the
//! poison-free `lock()` returning a guard directly rather than a
//! `Result`; like the real parking_lot, a panic while holding the lock
//! does not poison it for later users.

use std::fmt;
use std::ops::{Deref, DerefMut};

/// A mutual-exclusion primitive with parking_lot's panic-free `lock`.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`]; releases on drop.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: std::sync::MutexGuard<'a, T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex protecting `value`.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available. Unlike
    /// `std::sync::Mutex`, recovers from poisoning transparently.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        MutexGuard { inner }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Mutex").finish_non_exhaustive()
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;
    use std::sync::Arc;

    #[test]
    fn lock_round_trip() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn contended_increments() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 4000);
    }
}
