//! The [`Strategy`] trait and the combinators this workspace uses.

use rand::rngs::SmallRng;
use rand::Rng;

/// A recipe for generating values of one type.
///
/// Unlike real proptest there is no value tree / shrinking; a strategy
/// is just a sampler.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut SmallRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F: Fn(Self::Value) -> U>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut SmallRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }

        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut SmallRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut SmallRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}
