//! Offline stand-in for `proptest`, covering the API surface this
//! workspace uses: the [`proptest!`] macro, range and tuple strategies,
//! [`arbitrary::any`], `prop_map`, and the `prop_assert*` macros.
//!
//! Each test runs `ProptestConfig::cases` inputs drawn from a
//! deterministic per-test RNG (seeded from the test's name), so runs
//! are reproducible without a persistence file. Unlike real proptest
//! there is **no shrinking**: a failing case reports its case number
//! and message only. That trades debugging convenience for zero
//! dependencies — acceptable for a CI gate, and call sites remain
//! source-compatible with the real crate.

pub mod strategy;

pub mod arbitrary {
    //! Types with a canonical strategy.

    use std::marker::PhantomData;

    use rand::rngs::SmallRng;
    use rand::{Rng, RngCore};

    use crate::strategy::Strategy;

    /// A type with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary_sample(rng: &mut SmallRng) -> Self;
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut SmallRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_sample(rng: &mut SmallRng) -> Self {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_sample(rng: &mut SmallRng) -> Self {
            rng.gen_bool(0.5)
        }
    }

    /// Strategy returned by [`any`].
    pub struct Any<T> {
        _marker: PhantomData<T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut SmallRng) -> T {
            T::arbitrary_sample(rng)
        }
    }

    /// The canonical strategy producing any value of `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod test_runner {
    //! Case execution and configuration.

    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    use crate::strategy::Strategy;

    /// Per-test configuration (only `cases` is meaningful in the stub).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` inputs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// A failed property: message produced by a `prop_assert*` macro.
    #[derive(Debug, Clone)]
    pub struct TestCaseError {
        msg: String,
    }

    impl TestCaseError {
        /// Builds a failure with the given message.
        pub fn fail(msg: String) -> Self {
            TestCaseError { msg }
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str(&self.msg)
        }
    }

    /// Result type of a property body.
    pub type TestCaseResult = Result<(), TestCaseError>;

    /// FNV-1a over the test name: a stable per-test seed, so failures
    /// reproduce across runs without a regression file.
    fn seed_for(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }

    /// Runs `config.cases` samples of `strategy` through `test`,
    /// panicking on the first failure (no shrinking).
    pub fn run_cases<S, F>(config: &ProptestConfig, strategy: S, test: F, name: &str)
    where
        S: Strategy,
        F: Fn(S::Value) -> TestCaseResult,
    {
        let mut rng = SmallRng::seed_from_u64(seed_for(name));
        for case in 0..config.cases {
            let input = strategy.sample(&mut rng);
            if let Err(e) = test(input) {
                panic!(
                    "proptest `{name}` failed at case {case}/{}: {e}",
                    config.cases
                );
            }
        }
    }
}

pub mod prelude {
    //! Everything a proptest file conventionally imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: `proptest! { #![proptest_config(...)]`
/// `#[test] fn name(arg in strategy, ...) { body } ... }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_body! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_body! {
            config = $crate::test_runner::ProptestConfig::default();
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_body {
    (config = $config:expr;
     $($(#[$meta:meta])*
       fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)*
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let config = $config;
            $crate::test_runner::run_cases(
                &config,
                ($($strat,)+),
                |($($arg,)+)| {
                    $body
                    Ok(())
                },
                stringify!($name),
            );
        }
    )*};
}

/// Asserts a condition inside a property, failing the case (not the
/// whole process) with an optional formatted message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(::std::format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(
                        $crate::test_runner::TestCaseError::fail(::std::format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            ::std::format!($($fmt)+), l, r
                        )),
                    );
                }
            }
        }
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}
