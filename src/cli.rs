//! The `lr` command-line interface: generate instances, run algorithms,
//! trace executions, and verify invariants from the shell.
//!
//! The logic lives here (testable, pure: input strings → output string);
//! `src/bin/lr.rs` is a thin wrapper doing I/O.
//!
//! ```text
//! lr generate chain-away 8            # print an instance in text format
//! lr run PR < instance.txt            # run to termination, print stats
//! lr trace NewPR < instance.txt       # step-by-step trace
//! lr check < instance.txt             # invariants along executions
//! lr dot < instance.txt               # Graphviz of the initial DAG
//! lr scenario validate spec.json      # check a scenario spec
//! lr scenario run spec.json           # run a scenario sweep
//! ```

use std::fmt::Write as _;

use lr_core::alg::AlgorithmKind;
use lr_core::engine::{
    run_engine, run_engine_frontier, run_engine_frontier_sharded, run_engine_parallel,
    SchedulePolicy, DEFAULT_MAX_STEPS,
};
use lr_core::invariants::{
    check_acyclic, check_cor_3_3, check_cor_3_4, check_inv_3_1, check_inv_3_2, check_inv_4_1,
    check_inv_4_2,
};
use lr_core::trace::Trace;
use lr_graph::{dot, generate, parse, CsrInstance, DirectedView, ReversalInstance};
use lr_obs::{ObsMode, ObsSession};

/// A CLI-level error: message for the user, non-zero exit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// The one fallible parse every numeric flag goes through: failures
/// name the flag and echo the offending value, and values below `min`
/// are rejected explicitly — `--threads 0` is an error here, not a
/// zero-worker hang later.
fn parse_flag_u64(flag: &str, value: &str, min: u64) -> Result<u64, CliError> {
    let n: u64 = value
        .parse()
        .map_err(|_| err(format!("{flag} needs a positive integer, got {value:?}")))?;
    if n < min {
        return Err(err(format!("{flag} must be at least {min}, got {value:?}")));
    }
    Ok(n)
}

/// [`parse_flag_u64`] for `usize`-typed flags (thread counts, sizes).
fn parse_flag_usize(flag: &str, value: &str, min: usize) -> Result<usize, CliError> {
    parse_flag_u64(flag, value, min as u64).map(|n| n as usize)
}

/// Usage text.
pub const USAGE: &str = "\
lr — link reversal toolbox (Radeva & Lynch, PODC 2011 reproduction)

USAGE:
    lr generate <family> <n> [seed]   print an instance (families: chain-away,
                                      chain-toward, alternating, star, grid,
                                      complete, random)
    lr run <alg> [policy]             run on the instance from stdin
                                      (algs: FR, PR, NewPR, GB-pair, GB-triple;
                                       policies: greedy, first, last, random:<seed>;
                                       --engine map|frontier: execution substrate,
                                       default frontier — flat CSR engines,
                                       bit-identical stats to map; --threads N:
                                       node-range-sharded parallel greedy rounds,
                                       greedy policy only, bit-identical at any N)
    lr trace <alg> [policy]           step-by-step trace of the run
    lr check                          verify the paper's invariants along
                                      PR and NewPR executions on the instance
    lr dot                            Graphviz DOT of the initial orientation
    lr scenario validate <spec>...    parse + validate scenario spec files
    lr scenario run <spec>...         run scenario sweeps; rows append to
                                      BENCH_pr4.json (--smoke: first seed/trial
                                      only; --no-append: skip the trajectory)
    lr scenario sweep <spec>...       expand the spec's matrix grid and run
                                      every point x seeds x trials cell
                                      (--threads N: parallel workers, merged
                                      rows bit-identical at any N; --smoke;
                                      --no-append); summaries append to
                                      BENCH_pr5.json
    lr modelcheck <n>                 exhaustively model-check the paper's
                                      theorems on every instance of size n
                                      (--threads N: instance fan-out, summaries
                                      bit-identical at any N, LR_MC_THREADS
                                      honored when the flag is absent;
                                      --checks a,b,..: subset by key;
                                      --no-append); rows append to
                                      BENCH_pr6.json
    lr serve <spec>                   resident service mode: settle the spec's
                                      instance once, keep it live, and serve an
                                      open-loop request stream against it
                                      (--rate R: generated route queries per
                                      tick, default 10; --duration T: served
                                      ticks, default 100; --threads N: probe
                                      workers, output bit-identical at any N;
                                      --batch B / --queue Q: admission batch
                                      cap and bounded queue size — overflow is
                                      a counted drop, never a panic; --seed S:
                                      override the spec's first seed;
                                      --feed <path|->: newline-JSON events
                                      {\"at\":T, route|fail|heal|crash|restore|
                                      crash_leader: ...}, `-` reads stdin;
                                      --smoke marks the row; --no-append);
                                      rows append to BENCH_pr10.json
    lr obs validate <trace>...        check files are valid Chrome trace_events
                                      JSON (the CI gate over exported traces)

OBSERVABILITY (run | scenario | modelcheck | serve):
    --obs <off|summary|json|chrome>   record the command with lr-obs (default
                                      off — a single relaxed atomic load on the
                                      hot path): summary appends a span/counter
                                      table, json emits newline-delimited event
                                      records, chrome exports a trace_events
                                      document for chrome://tracing
    --obs-out <path>                  write the json/chrome (and summary) sink
                                      to a file instead of stdout
";

fn parse_alg(s: &str) -> Result<AlgorithmKind, CliError> {
    AlgorithmKind::ALL
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(s))
        .ok_or_else(|| {
            err(format!(
                "unknown algorithm {s:?}; expected one of FR, PR, NewPR, GB-pair, GB-triple"
            ))
        })
}

fn parse_policy(s: Option<&str>) -> Result<SchedulePolicy, CliError> {
    match s {
        None | Some("greedy") => Ok(SchedulePolicy::GreedyRounds),
        Some("first") => Ok(SchedulePolicy::FirstSingle),
        Some("last") => Ok(SchedulePolicy::LastSingle),
        Some(other) => match other.strip_prefix("random:") {
            Some(seed) => seed
                .parse()
                .map(|seed| SchedulePolicy::RandomSingle { seed })
                .map_err(|_| err(format!("invalid seed in {other:?}"))),
            None => Err(err(format!(
                "unknown policy {other:?}; expected greedy, first, last, or random:<seed>"
            ))),
        },
    }
}

fn parse_stdin_instance(input: &str) -> Result<ReversalInstance, CliError> {
    parse::parse_instance(input).map_err(|e| err(format!("invalid instance: {e}")))
}

/// Runs one CLI invocation: `args` excludes the program name; `stdin` is
/// the piped input (used by run/trace/check/dot).
///
/// # Errors
///
/// Returns a user-facing message for bad arguments or invalid input.
pub fn run_cli(args: &[&str], stdin: &str) -> Result<String, CliError> {
    match args {
        [] | ["help"] | ["--help"] | ["-h"] => Ok(USAGE.to_string()),
        ["generate", rest @ ..] => cmd_generate(rest),
        ["run" | "scenario" | "modelcheck" | "serve", ..] => {
            // The obs-aware commands: `--obs`/`--obs-out` are stripped
            // here, before the per-command parsers see the arguments.
            let (mode, obs_out, inner) = parse_obs_flags(args)?;
            run_with_obs(&inner, stdin, mode, obs_out.as_deref())
        }
        ["trace", rest @ ..] => cmd_trace(rest, stdin),
        ["check"] => cmd_check(stdin),
        ["dot"] => cmd_dot(stdin),
        ["obs", rest @ ..] => cmd_obs(rest),
        [other, ..] => Err(err(format!("unknown command {other:?}\n\n{USAGE}"))),
    }
}

/// Strips `--obs <mode>` / `--obs=<mode>` and `--obs-out <path>` /
/// `--obs-out=<path>` from `args`, returning the mode, the sink path,
/// and the remaining arguments in order.
fn parse_obs_flags<'a>(
    args: &[&'a str],
) -> Result<(ObsMode, Option<String>, Vec<&'a str>), CliError> {
    let parse_mode = |v: &str| {
        ObsMode::parse(v).ok_or_else(|| {
            err(format!(
                "unknown --obs mode {v:?}; expected off, summary, json, or chrome"
            ))
        })
    };
    let mut mode = ObsMode::Off;
    let mut obs_out: Option<String> = None;
    let mut inner: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(&a) = it.next() {
        match a {
            "--obs" => {
                let v = it
                    .next()
                    .ok_or_else(|| err("--obs needs a value (off, summary, json, or chrome)"))?;
                mode = parse_mode(v)?;
            }
            "--obs-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| err("--obs-out needs a file path"))?;
                obs_out = Some((*v).to_string());
            }
            _ => {
                if let Some(v) = a.strip_prefix("--obs=") {
                    mode = parse_mode(v)?;
                } else if let Some(v) = a.strip_prefix("--obs-out=") {
                    obs_out = Some(v.to_string());
                } else {
                    inner.push(a);
                }
            }
        }
    }
    Ok((mode, obs_out, inner))
}

/// Runs an obs-aware command, recording it under `mode` and rendering
/// the session's report through the selected sink: `summary` appends a
/// human table to the command's output (and to `--obs-out` when given),
/// `json`/`chrome` write to `--obs-out` (or append to the output when
/// no path is given). Chrome documents are validated before they are
/// written — `lr obs validate` can never fail on a file this produced.
fn run_with_obs(
    args: &[&str],
    stdin: &str,
    mode: ObsMode,
    obs_out: Option<&str>,
) -> Result<String, CliError> {
    fn dispatch(args: &[&str], stdin: &str) -> Result<String, CliError> {
        match args {
            ["run", rest @ ..] => cmd_run(rest, stdin),
            ["scenario", rest @ ..] => cmd_scenario(rest),
            ["modelcheck", rest @ ..] => cmd_modelcheck(rest),
            ["serve", rest @ ..] => cmd_serve(rest, stdin),
            _ => Err(err(format!("unknown command\n\n{USAGE}"))),
        }
    }
    if mode == ObsMode::Off {
        if obs_out.is_some() {
            return Err(err("--obs-out needs --obs summary, json, or chrome"));
        }
        return dispatch(args, stdin);
    }
    let session = ObsSession::start(mode);
    let result = dispatch(args, stdin);
    // Finish unconditionally so a failed command still lowers the
    // recording level before the error propagates.
    let report = session.finish();
    let mut out = result?;
    let write_sink = |path: &str, text: &str| -> Result<(), CliError> {
        std::fs::write(path, text).map_err(|e| err(format!("cannot write {path}: {e}")))
    };
    match mode {
        ObsMode::Summary => {
            let text = report.render_summary();
            if let Some(path) = obs_out {
                write_sink(path, &text)?;
            }
            out.push('\n');
            out.push_str(&text);
        }
        ObsMode::Json => {
            let text = report.render_json_lines();
            match obs_out {
                Some(path) => {
                    write_sink(path, &text)?;
                    let _ = writeln!(
                        out,
                        "\nobs: {} metric(s), {} event(s) written to {path}",
                        report.metric_count(),
                        report.events.len()
                    );
                }
                None => {
                    out.push('\n');
                    out.push_str(&text);
                }
            }
        }
        ObsMode::Chrome => {
            let text = report.render_chrome_trace();
            let events = lr_obs::validate_chrome_trace(&text)
                .map_err(|e| err(format!("internal error: emitted chrome trace invalid: {e}")))?;
            match obs_out {
                Some(path) => {
                    write_sink(path, &text)?;
                    let _ = writeln!(
                        out,
                        "\nobs: chrome trace with {events} event(s) written to {path} \
                         (load in chrome://tracing or ui.perfetto.dev)"
                    );
                }
                None => {
                    out.push('\n');
                    out.push_str(&text);
                }
            }
        }
        ObsMode::Off => unreachable!("handled above"),
    }
    Ok(out)
}

/// `lr obs validate <trace.json>`: the CI gate over exported Chrome
/// traces.
fn cmd_obs(args: &[&str]) -> Result<String, CliError> {
    match args {
        ["validate", paths @ ..] if !paths.is_empty() => {
            let mut out = String::new();
            for path in paths {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| err(format!("cannot read {path}: {e}")))?;
                let events = lr_obs::validate_chrome_trace(&text)
                    .map_err(|e| err(format!("{path}: invalid Chrome trace: {e}")))?;
                let _ = writeln!(
                    out,
                    "{path}: OK — valid Chrome trace_events JSON with {events} event(s)"
                );
            }
            Ok(out)
        }
        _ => Err(err(format!(
            "obs needs `validate <trace.json>...`\n\n{USAGE}"
        ))),
    }
}

fn cmd_generate(args: &[&str]) -> Result<String, CliError> {
    let (family, rest) = args
        .split_first()
        .ok_or_else(|| err(format!("generate needs a family\n\n{USAGE}")))?;
    let parse_n = |s: Option<&&str>| -> Result<usize, CliError> {
        parse_flag_usize("size", s.ok_or_else(|| err("missing size argument"))?, 1)
    };
    let seed = rest
        .get(1)
        .map_or(Ok(0u64), |s| parse_flag_u64("seed", s, 0))?;
    let inst = match *family {
        "chain-away" => generate::chain_away(parse_n(rest.first())?),
        "chain-toward" => generate::chain_toward(parse_n(rest.first())?),
        "alternating" => generate::alternating_chain(parse_n(rest.first())?),
        "star" => generate::star_away(parse_n(rest.first())?),
        "grid" => {
            let n = parse_n(rest.first())?;
            generate::grid_away(n, n)
        }
        "complete" => generate::complete_away(parse_n(rest.first())?),
        "random" => {
            let n = parse_n(rest.first())?;
            generate::random_connected(n, n, seed)
        }
        other => return Err(err(format!("unknown family {other:?}"))),
    };
    Ok(parse::to_text(&inst))
}

/// Which execution substrate `lr run` drives: the map-backed reference
/// engines or the flat CSR-native frontier engines (the default).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineChoice {
    Map,
    Frontier,
}

impl EngineChoice {
    fn name(self) -> &'static str {
        match self {
            EngineChoice::Map => "map",
            EngineChoice::Frontier => "frontier",
        }
    }
}

fn cmd_run(args: &[&str], stdin: &str) -> Result<String, CliError> {
    let (alg, rest) = args
        .split_first()
        .ok_or_else(|| err(format!("run needs an algorithm\n\n{USAGE}")))?;
    let kind = parse_alg(alg)?;
    let parse_engine = |value: &str| -> Result<EngineChoice, CliError> {
        match value {
            "map" => Ok(EngineChoice::Map),
            "frontier" => Ok(EngineChoice::Frontier),
            other => Err(err(format!(
                "unknown engine {other:?}; expected map or frontier"
            ))),
        }
    };
    let parse_threads = |value: &str| parse_flag_usize("--threads", value, 1);
    let mut engine_choice = EngineChoice::Frontier;
    let mut threads = 1usize;
    let mut policy_arg: Option<&str> = None;
    let mut it = rest.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--engine" => {
                let value = it
                    .next()
                    .ok_or_else(|| err("--engine needs a value (map or frontier)"))?;
                engine_choice = parse_engine(value)?;
            }
            "--threads" => {
                let value = it
                    .next()
                    .ok_or_else(|| err("--threads needs a value (worker thread count)"))?;
                threads = parse_threads(value)?;
            }
            a => {
                if let Some(value) = a.strip_prefix("--engine=") {
                    engine_choice = parse_engine(value)?;
                } else if let Some(value) = a.strip_prefix("--threads=") {
                    threads = parse_threads(value)?;
                } else if a.starts_with("--") {
                    return Err(err(format!("unknown flag {a:?} for `lr run`")));
                } else if policy_arg.is_some() {
                    return Err(err(format!("unexpected argument {a:?}")));
                } else {
                    policy_arg = Some(a);
                }
            }
        }
    }
    let policy = parse_policy(policy_arg)?;
    if threads > 1 && policy != SchedulePolicy::GreedyRounds {
        return Err(err(
            "--threads above 1 requires the greedy policy (parallel rounds plan greedily)",
        ));
    }
    let inst = parse_stdin_instance(stdin)?;
    let (stats, orientation) = match engine_choice {
        EngineChoice::Map => {
            let mut engine = kind.engine(&inst);
            let stats = if threads > 1 {
                run_engine_parallel(engine.as_mut(), threads, DEFAULT_MAX_STEPS)
            } else {
                run_engine(engine.as_mut(), policy, DEFAULT_MAX_STEPS)
            };
            (stats, engine.orientation())
        }
        EngineChoice::Frontier => {
            let mut engine = kind.frontier_engine(CsrInstance::from_instance(&inst));
            let stats = if threads > 1 {
                run_engine_frontier_sharded(engine.as_mut(), threads, DEFAULT_MAX_STEPS)
            } else {
                run_engine_frontier(engine.as_mut(), policy, DEFAULT_MAX_STEPS)
            };
            (stats, engine.orientation())
        }
    };
    if !stats.terminated {
        return Err(err("execution did not terminate within the step budget"));
    }
    let view = DirectedView::new(&inst.graph, &orientation);
    let mut out = String::new();
    let _ = writeln!(out, "algorithm:        {}", stats.algorithm);
    let _ = writeln!(out, "engine:           {}", engine_choice.name());
    let _ = writeln!(out, "threads:          {threads}");
    let _ = writeln!(out, "nodes:            {}", inst.node_count());
    let _ = writeln!(out, "initial bad:      {}", inst.initial_bad_nodes());
    let _ = writeln!(out, "steps:            {}", stats.steps);
    let _ = writeln!(out, "total reversals:  {}", stats.total_reversals);
    let _ = writeln!(out, "rounds:           {}", stats.rounds);
    let _ = writeln!(out, "dummy steps:      {}", stats.dummy_steps);
    let _ = writeln!(out, "acyclic:          {}", view.is_acyclic());
    let _ = writeln!(
        out,
        "dest oriented:    {}",
        view.is_destination_oriented(inst.dest)
    );
    Ok(out)
}

fn cmd_trace(args: &[&str], stdin: &str) -> Result<String, CliError> {
    let (alg, rest) = args
        .split_first()
        .ok_or_else(|| err(format!("trace needs an algorithm\n\n{USAGE}")))?;
    let kind = parse_alg(alg)?;
    let policy = parse_policy(rest.first().copied())?;
    let inst = parse_stdin_instance(stdin)?;
    let mut engine = kind.engine(&inst);
    let trace = Trace::record(engine.as_mut(), policy, DEFAULT_MAX_STEPS);
    trace
        .validate()
        .map_err(|e| err(format!("internal trace inconsistency: {e}")))?;
    Ok(trace.render_text())
}

fn cmd_check(stdin: &str) -> Result<String, CliError> {
    use lr_core::alg::{newpr_step, onestep_pr_step, NewPrState, PrState};

    let inst = parse_stdin_instance(stdin)?;
    let emb = inst.embedding();
    let mut out = String::new();
    let mut states = 0usize;

    // OneStepPR execution, checking §3 invariants at every state.
    let mut pr = PrState::initial(&inst);
    loop {
        check_inv_3_1(&pr.dirs).map_err(err)?;
        check_inv_3_2(&inst, &pr).map_err(err)?;
        check_cor_3_3(&inst, &pr).map_err(err)?;
        check_cor_3_4(&inst, &pr).map_err(err)?;
        check_acyclic(&inst, &pr.dirs).map_err(err)?;
        states += 1;
        let Some(u) = pr.dirs.sinks().find(|&u| u != inst.dest) else {
            break;
        };
        onestep_pr_step(&inst, &mut pr, u);
    }
    let _ = writeln!(
        out,
        "OneStepPR: Inv 3.1, 3.2, Cor 3.3/3.4, acyclicity OK in {states} states"
    );

    // NewPR execution, checking §4 invariants at every state.
    let mut np = NewPrState::initial(&inst);
    let mut states = 0usize;
    loop {
        check_inv_3_1(&np.dirs).map_err(err)?;
        check_inv_4_1(&inst, &emb, &np).map_err(err)?;
        check_inv_4_2(&inst, &emb, &np).map_err(err)?;
        check_acyclic(&inst, &np.dirs).map_err(err)?;
        states += 1;
        let Some(u) = np.dirs.sinks().find(|&u| u != inst.dest) else {
            break;
        };
        newpr_step(&inst, &mut np, u);
    }
    let _ = writeln!(
        out,
        "NewPR:     Inv 3.1, 4.1, 4.2, Thm 4.3 acyclicity OK in {states} states"
    );
    let _ = writeln!(out, "all checks passed");
    Ok(out)
}

/// Parsed flags of a `lr scenario <sub>` invocation.
struct ScenarioFlags {
    smoke: bool,
    append: bool,
    threads: usize,
    paths: Vec<String>,
}

/// Parses scenario flags against the subcommand's allowlist.
/// `--threads` (sweep only) takes a value, either as the next argument
/// or as `--threads=N`.
fn parse_scenario_flags(
    sub: &str,
    rest: &[&str],
    allowed: &[&str],
) -> Result<ScenarioFlags, CliError> {
    let mut flags = ScenarioFlags {
        smoke: false,
        append: true,
        threads: 1,
        paths: Vec::new(),
    };
    let reject = |flag: &str| -> Result<(), CliError> {
        if allowed.contains(&flag) {
            Ok(())
        } else {
            Err(err(format!(
                "unknown flag {flag:?} for `lr scenario {sub}`"
            )))
        }
    };
    let parse_threads = |value: &str| parse_flag_usize("--threads", value, 1);
    let mut it = rest.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--smoke" => {
                reject("--smoke")?;
                flags.smoke = true;
            }
            "--no-append" => {
                reject("--no-append")?;
                flags.append = false;
            }
            "--threads" => {
                reject("--threads")?;
                let value = it
                    .next()
                    .ok_or_else(|| err("--threads needs a value (worker thread count)"))?;
                flags.threads = parse_threads(value)?;
            }
            a => {
                if let Some(value) = a.strip_prefix("--threads=") {
                    if !allowed.contains(&"--threads") {
                        // Echo the flag as the user typed it, = and all.
                        return Err(err(format!("unknown flag {a:?} for `lr scenario {sub}`")));
                    }
                    flags.threads = parse_threads(value)?;
                } else if a.starts_with("--") {
                    reject(a)?;
                } else {
                    flags.paths.push(a.to_string());
                }
            }
        }
    }
    if flags.paths.is_empty() {
        return Err(err(format!("scenario {sub} needs at least one spec file")));
    }
    Ok(flags)
}

fn cmd_scenario(args: &[&str]) -> Result<String, CliError> {
    use lr_bench::trajectory::{
        append_records_to, load_records_from, trajectory_path_named, ScenarioRecord, SweepRecord,
        SCENARIO_TRAJECTORY, SWEEP_TRAJECTORY,
    };
    use lr_scenario::spec::ScenarioSpec;
    use lr_scenario::sweep::{
        render_matrix_table, render_table, run_matrix_sweep, run_sweep, MatrixOptions, SweepOptions,
    };

    let (sub, rest) = args.split_first().ok_or_else(|| {
        err(format!(
            "scenario needs a subcommand (run | sweep | validate)\n\n{USAGE}"
        ))
    })?;
    let allowed_flags: &[&str] = match *sub {
        "run" => &["--smoke", "--no-append"],
        "sweep" => &["--smoke", "--no-append", "--threads"],
        "validate" => &[],
        other => {
            return Err(err(format!(
                "unknown scenario subcommand {other:?} (expected run, sweep, or validate)"
            )))
        }
    };
    let flags = parse_scenario_flags(sub, rest, allowed_flags)?;
    let paths: Vec<&str> = flags.paths.iter().map(String::as_str).collect();
    // `validate` cross-checks the topology here; `run` leaves that to
    // run_scenario, which validates each (seed, trial) instance anyway
    // — doing both would build every topology twice.
    let load = |path: &str, cross_validate: bool| -> Result<ScenarioSpec, CliError> {
        let text =
            std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
        let spec = ScenarioSpec::from_json(&text).map_err(|e| err(format!("{path}: {e}")))?;
        if cross_validate {
            spec.validate().map_err(|e| err(format!("{path}: {e}")))?;
        }
        Ok(spec)
    };
    // Shared tail of `run` and `sweep`: the re-parse gate the CI smoke
    // steps rely on — whatever was just appended must still read back.
    // `reparse` supplies the record-type-specific load (serde is not a
    // direct dependency of this crate, so the type stays at the call
    // site).
    fn report_trajectory(
        out: &mut String,
        trajectory: &std::path::Path,
        all_rows: usize,
        append: bool,
        noun: &str,
        reparse: impl Fn(&std::path::Path) -> Result<usize, String>,
    ) -> Result<(), CliError> {
        if append {
            let total =
                reparse(trajectory).map_err(|e| err(format!("trajectory re-parse failed: {e}")))?;
            let _ = writeln!(
                out,
                "{all_rows} {noun}(s) appended to {} ({total} total, re-parsed OK)",
                trajectory.display()
            );
        } else {
            let _ = writeln!(out, "{all_rows} {noun}(s) (append skipped)");
        }
        Ok(())
    }

    let mut out = String::new();
    match *sub {
        "validate" => {
            for path in &paths {
                let spec = load(path, true)?;
                let matrix_note = match &spec.matrix {
                    Some(m) => format!(", matrix of {} point(s)", m.point_count()),
                    None => String::new(),
                };
                let _ = writeln!(
                    out,
                    "{path}: OK — scenario {:?} ({} on {}, {} churn event(s), {} seed(s) × {} \
                     trial(s){matrix_note})",
                    spec.name,
                    spec.protocol.name(),
                    spec.topology.family_name(),
                    spec.churn.len(),
                    spec.seeds.len(),
                    spec.trials,
                );
            }
        }
        "run" => {
            let options = SweepOptions { smoke: flags.smoke };
            let trajectory = trajectory_path_named(SCENARIO_TRAJECTORY);
            let mut all_rows = 0usize;
            for path in &paths {
                let spec = load(path, false)?;
                if spec.matrix.is_some() {
                    return Err(err(format!(
                        "{path}: spec declares a matrix; use `lr scenario sweep`"
                    )));
                }
                let outcome = run_sweep(&spec, options).map_err(|e| err(format!("{path}: {e}")))?;
                let _ = writeln!(out, "scenario {:?} ({path})", spec.name);
                out.push_str(&render_table(&outcome.records));
                out.push('\n');
                all_rows += outcome.records.len();
                if flags.append {
                    append_records_to(&trajectory, &outcome.records)
                        .map_err(|e| err(format!("{path}: {e}")))?;
                }
            }
            report_trajectory(&mut out, &trajectory, all_rows, flags.append, "row", |p| {
                load_records_from::<ScenarioRecord>(p).map(|v| v.len())
            })?;
        }
        "sweep" => {
            let options = MatrixOptions {
                threads: flags.threads,
                smoke: flags.smoke,
            };
            let trajectory = trajectory_path_named(SWEEP_TRAJECTORY);
            let mut all_rows = 0usize;
            for path in &paths {
                let spec = load(path, false)?;
                let outcome =
                    run_matrix_sweep(&spec, options).map_err(|e| err(format!("{path}: {e}")))?;
                let _ = writeln!(
                    out,
                    "sweep {:?} ({path}): matrix expanded to {} point(s) = {} cell(s), \
                     {} thread(s)",
                    spec.name,
                    outcome.points.len(),
                    outcome.cells,
                    flags.threads,
                );
                out.push_str(&render_matrix_table(&outcome.records));
                out.push('\n');
                all_rows += outcome.records.len();
                if flags.append {
                    append_records_to(&trajectory, &outcome.records)
                        .map_err(|e| err(format!("{path}: {e}")))?;
                }
            }
            report_trajectory(
                &mut out,
                &trajectory,
                all_rows,
                flags.append,
                "summary row",
                |p| load_records_from::<SweepRecord>(p).map(|v| v.len()),
            )?;
        }
        _ => unreachable!("subcommand checked above"),
    }
    Ok(out)
}

/// `lr serve <spec>`: the resident service mode. Loads a (non-matrix)
/// scenario spec, settles its instance, and serves the open-loop
/// workload — seeded generator plus optional `--feed` newline-JSON
/// events (`-` reads stdin). One [`ServeRecord`] row appends to the
/// `BENCH_pr10.json` trajectory unless `--no-append`.
///
/// [`ServeRecord`]: lr_bench::trajectory::ServeRecord
fn cmd_serve(args: &[&str], stdin: &str) -> Result<String, CliError> {
    use lr_bench::trajectory::{
        append_records_to, load_records_from, trajectory_path_named, ServeRecord, SERVE_TRAJECTORY,
    };
    use lr_scenario::serve::{parse_feed, run_serve, ServeOptions};
    use lr_scenario::spec::ScenarioSpec;

    let mut options = ServeOptions::default();
    let mut append = true;
    let mut feed_arg: Option<String> = None;
    let mut path: Option<&str> = None;
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--smoke" => options.smoke = true,
            "--no-append" => append = false,
            _ => {
                // Valued flags, `--flag value` or `--flag=value`.
                let (flag, inline) = match arg.split_once('=') {
                    Some((f, v)) if f.starts_with("--") => (f, Some(v)),
                    _ => (arg, None),
                };
                let mut value = |what: &str| -> Result<&str, CliError> {
                    match inline {
                        Some(v) => Ok(v),
                        None => it
                            .next()
                            .copied()
                            .ok_or_else(|| err(format!("{flag} needs a value ({what})"))),
                    }
                };
                match flag {
                    "--rate" => {
                        options.rate = parse_flag_u64("--rate", value("requests per tick")?, 0)?;
                    }
                    "--duration" => {
                        options.duration = parse_flag_u64("--duration", value("served ticks")?, 1)?;
                    }
                    "--threads" => {
                        options.threads =
                            parse_flag_usize("--threads", value("worker thread count")?, 1)?;
                    }
                    "--batch" => {
                        options.batch =
                            parse_flag_usize("--batch", value("admission batch cap")?, 1)?;
                    }
                    "--queue" => {
                        options.queue =
                            parse_flag_usize("--queue", value("bounded queue capacity")?, 1)?;
                    }
                    "--seed" => {
                        options.seed = Some(parse_flag_u64("--seed", value("base seed")?, 0)?);
                    }
                    "--feed" => {
                        feed_arg =
                            Some(value("newline-JSON events path, or - for stdin")?.to_string());
                    }
                    other if other.starts_with("--") => {
                        return Err(err(format!("unknown flag {arg:?} for `lr serve`")));
                    }
                    _ if path.is_some() => {
                        return Err(err(format!("unexpected argument {arg:?}")));
                    }
                    _ => path = Some(arg),
                }
            }
        }
    }
    let path = path.ok_or_else(|| err(format!("serve needs a scenario spec file\n\n{USAGE}")))?;
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("cannot read {path}: {e}")))?;
    let spec = ScenarioSpec::from_json(&text).map_err(|e| err(format!("{path}: {e}")))?;
    if spec.matrix.is_some() {
        return Err(err(format!(
            "{path}: spec declares a matrix; `lr serve` drives a single instance"
        )));
    }
    let feed = match feed_arg.as_deref() {
        None => Vec::new(),
        Some("-") => parse_feed(stdin).map_err(|e| err(format!("--feed -: {e}")))?,
        Some(p) => {
            let t = std::fs::read_to_string(p).map_err(|e| err(format!("cannot read {p}: {e}")))?;
            parse_feed(&t).map_err(|e| err(format!("{p}: {e}")))?
        }
    };
    let report = run_serve(&spec, &options, &feed).map_err(|e| err(format!("{path}: {e}")))?;
    let mut out = report.render();
    if append {
        let trajectory = trajectory_path_named(SERVE_TRAJECTORY);
        append_records_to(&trajectory, &[report.to_record()])
            .map_err(|e| err(format!("{path}: {e}")))?;
        let total = load_records_from::<ServeRecord>(&trajectory)
            .map_err(|e| err(format!("trajectory re-parse failed: {e}")))?
            .len();
        let _ = writeln!(
            out,
            "1 row appended to {} ({total} total, re-parsed OK)",
            trajectory.display()
        );
    } else {
        let _ = writeln!(out, "1 row (append skipped)");
    }
    Ok(out)
}

/// Resolves the outer thread count for `lr modelcheck`: the `--threads`
/// flag wins, then the `LR_MC_THREADS` environment value, then 1.
fn resolve_mc_threads(flag: Option<usize>, env: Option<&str>) -> usize {
    flag.unwrap_or_else(|| lr_simrel::model_check::parse_mc_threads(env))
}

fn cmd_modelcheck(args: &[&str]) -> Result<String, CliError> {
    use lr_bench::mc::{battery_records, run_battery};
    use lr_bench::trajectory::{
        append_records_to, load_records_from, trajectory_path_named, ModelCheckRecord,
        MODEL_CHECK_TRAJECTORY,
    };
    use lr_simrel::model_check::{CheckKind, McOptions};

    let mut n: Option<usize> = None;
    let mut threads_flag: Option<usize> = None;
    let mut checks: Vec<CheckKind> = CheckKind::ALL.to_vec();
    let mut append = true;
    let parse_threads = |value: &str| parse_flag_usize("--threads", value, 1);
    let parse_checks = |value: &str| -> Result<Vec<CheckKind>, CliError> {
        let kinds: Vec<CheckKind> = value
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|key| {
                CheckKind::from_key(key).ok_or_else(|| {
                    let known: Vec<&str> = CheckKind::ALL.iter().map(|k| k.key()).collect();
                    err(format!(
                        "unknown check {key:?}; expected a comma list of {}",
                        known.join(", ")
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        if kinds.is_empty() {
            return Err(err("--checks needs at least one check key"));
        }
        Ok(kinds)
    };
    let mut it = args.iter();
    while let Some(&arg) = it.next() {
        match arg {
            "--no-append" => append = false,
            "--threads" => {
                let value = it
                    .next()
                    .ok_or_else(|| err("--threads needs a value (worker thread count)"))?;
                threads_flag = Some(parse_threads(value)?);
            }
            "--checks" => {
                let value = it
                    .next()
                    .ok_or_else(|| err("--checks needs a comma-separated list of check keys"))?;
                checks = parse_checks(value)?;
            }
            a => {
                if let Some(value) = a.strip_prefix("--threads=") {
                    threads_flag = Some(parse_threads(value)?);
                } else if let Some(value) = a.strip_prefix("--checks=") {
                    checks = parse_checks(value)?;
                } else if a.starts_with("--") {
                    return Err(err(format!("unknown flag {a:?} for `lr modelcheck`")));
                } else if n.is_some() {
                    return Err(err(format!("unexpected argument {a:?}")));
                } else {
                    n = Some(
                        a.parse::<usize>()
                            .ok()
                            .filter(|&n| (2..=6).contains(&n))
                            .ok_or_else(|| {
                                err(format!("modelcheck needs a size n in 2..=6, got {a:?}"))
                            })?,
                    );
                }
            }
        }
    }
    let n = n.ok_or_else(|| err(format!("modelcheck needs a size argument\n\n{USAGE}")))?;
    let opts = McOptions::default().with_threads(resolve_mc_threads(
        threads_flag,
        std::env::var("LR_MC_THREADS").ok().as_deref(),
    ));

    let battery = run_battery(n, &checks, &opts);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "model check: every connected graph × acyclic orientation × destination at n = {n} \
         ({} thread(s))",
        opts.threads
    );
    let _ = writeln!(out);
    let widths = [28usize, 10, 12, 12, 10, 9];
    let header = [
        "check",
        "instances",
        "states",
        "transitions",
        "ms",
        "verified",
    ];
    let mut line = String::new();
    for (w, c) in widths.iter().zip(header) {
        let _ = write!(line, "{c:>w$} ", w = w);
    }
    let _ = writeln!(out, "{}", line.trim_end());
    let _ = writeln!(
        out,
        "{}",
        "-".repeat(widths.iter().sum::<usize>() + widths.len())
    );
    for row in &battery {
        let mut line = String::new();
        let cells = [
            row.kind.title().to_string(),
            row.summary.instances.to_string(),
            row.summary.states_visited.to_string(),
            row.summary.transitions.to_string(),
            format!("{:.1}", row.elapsed_ns as f64 / 1e6),
            if row.summary.verified() { "yes" } else { "NO" }.to_string(),
        ];
        for (w, c) in widths.iter().zip(cells) {
            let _ = write!(line, "{c:>w$} ", w = w);
        }
        let _ = writeln!(out, "{}", line.trim_end());
    }
    let _ = writeln!(out);

    let records = battery_records(&battery, "lr-modelcheck", &opts);
    let trajectory = trajectory_path_named(MODEL_CHECK_TRAJECTORY);
    if append {
        append_records_to(&trajectory, &records).map_err(err)?;
        let total = load_records_from::<ModelCheckRecord>(&trajectory)
            .map_err(|e| err(format!("trajectory re-parse failed: {e}")))?
            .len();
        let _ = writeln!(
            out,
            "{} row(s) appended to {} ({total} total, re-parsed OK)",
            records.len(),
            trajectory.display()
        );
    } else {
        let _ = writeln!(out, "{} row(s) (append skipped)", records.len());
    }

    if let Some(bad) = battery.iter().find(|r| !r.summary.verified()) {
        return Err(err(format!(
            "{} did NOT verify at n = {n}: violation={:?} truncated={:?}\n\n{out}",
            bad.kind.key(),
            bad.summary.first_violation,
            bad.summary.truncated
        )));
    }
    Ok(out)
}

fn cmd_dot(stdin: &str) -> Result<String, CliError> {
    let inst = parse_stdin_instance(stdin)?;
    Ok(dot::to_dot(
        &inst.view(),
        &dot::DotOptions {
            destination: Some(inst.dest),
            highlight_sinks: true,
            name: Some("instance".into()),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_is_shown() {
        let out = run_cli(&[], "").unwrap();
        assert!(out.contains("USAGE"));
        assert_eq!(run_cli(&["help"], "").unwrap(), out);
    }

    #[test]
    fn unknown_command_errors_with_usage() {
        let e = run_cli(&["frobnicate"], "").unwrap_err();
        assert!(e.0.contains("unknown command"));
        assert!(e.0.contains("USAGE"));
    }

    #[test]
    fn generate_families() {
        for family in [
            "chain-away",
            "chain-toward",
            "alternating",
            "star",
            "complete",
        ] {
            let out = run_cli(&["generate", family, "5"], "").unwrap();
            assert!(out.starts_with("dest "), "{family}: {out}");
        }
        let grid = run_cli(&["generate", "grid", "3"], "").unwrap();
        assert!(grid.lines().count() > 5);
        let a = run_cli(&["generate", "random", "8", "7"], "").unwrap();
        let b = run_cli(&["generate", "random", "8", "7"], "").unwrap();
        assert_eq!(a, b, "same seed, same instance");
    }

    #[test]
    fn generate_rejects_bad_input() {
        assert!(run_cli(&["generate"], "").is_err());
        assert!(run_cli(&["generate", "nope", "5"], "").is_err());
        assert!(run_cli(&["generate", "chain-away"], "").is_err());
        assert!(run_cli(&["generate", "chain-away", "x"], "").is_err());
    }

    #[test]
    fn run_pipes_generate_output() {
        let inst = run_cli(&["generate", "chain-away", "6"], "").unwrap();
        let out = run_cli(&["run", "PR"], &inst).unwrap();
        assert!(out.contains("total reversals:  5"));
        assert!(out.contains("dest oriented:    true"));
        let out = run_cli(&["run", "FR", "random:9"], &inst).unwrap();
        assert!(out.contains("total reversals:  25"));
    }

    #[test]
    fn run_rejects_unknown_algorithm_and_policy() {
        let inst = run_cli(&["generate", "chain-away", "4"], "").unwrap();
        assert!(run_cli(&["run", "XYZ"], &inst).is_err());
        assert!(run_cli(&["run", "PR", "bogus"], &inst).is_err());
        assert!(run_cli(&["run", "PR", "random:abc"], &inst).is_err());
    }

    #[test]
    fn run_engine_flag_selects_the_substrate() {
        let inst = run_cli(&["generate", "chain-away", "6"], "").unwrap();
        let frontier = run_cli(&["run", "PR"], &inst).unwrap();
        assert!(
            frontier.contains("engine:           frontier"),
            "{frontier}"
        );
        let map = run_cli(&["run", "PR", "--engine", "map"], &inst).unwrap();
        assert!(map.contains("engine:           map"), "{map}");
        // Both substrates are bit-identical apart from the engine line.
        assert_eq!(frontier.replace("frontier", "map"), map);
        // `--engine=frontier` is the same as the default.
        let explicit = run_cli(&["run", "PR", "--engine=frontier"], &inst).unwrap();
        assert_eq!(explicit, frontier);
    }

    #[test]
    fn run_threads_flag_is_bit_identical_and_greedy_only() {
        let inst = run_cli(&["generate", "random", "12", "5"], "").unwrap();
        let seq = run_cli(&["run", "NewPR"], &inst).unwrap();
        for args in [
            &["run", "NewPR", "--threads", "4"][..],
            &["run", "NewPR", "--threads=4"][..],
        ] {
            let par = run_cli(args, &inst).unwrap();
            assert!(par.contains("threads:          4"), "{par}");
            assert_eq!(
                par.replace("threads:          4", "threads:          1"),
                seq
            );
        }
        // Sharding also works on the map substrate (snapshot chunks).
        let map_par = run_cli(
            &["run", "NewPR", "--engine", "map", "--threads", "2"],
            &inst,
        )
        .unwrap();
        assert!(map_par.contains("engine:           map"), "{map_par}");
        assert!(map_par.contains("threads:          2"), "{map_par}");
        // Single-step policies cannot be sharded.
        let e = run_cli(&["run", "NewPR", "first", "--threads", "2"], &inst).unwrap_err();
        assert!(e.0.contains("greedy"), "{e}");
    }

    #[test]
    fn run_rejects_bad_engine_and_threads_flags() {
        let inst = run_cli(&["generate", "chain-away", "4"], "").unwrap();
        let e = run_cli(&["run", "PR", "--engine", "warp"], &inst).unwrap_err();
        assert!(e.0.contains("unknown engine"), "{e}");
        let e = run_cli(&["run", "PR", "--engine"], &inst).unwrap_err();
        assert!(e.0.contains("needs a value"), "{e}");
        // The shared flag parser names the flag and echoes the value.
        let e = run_cli(&["run", "PR", "--threads", "0"], &inst).unwrap_err();
        assert!(e.0.contains("--threads must be at least 1"), "{e}");
        assert!(e.0.contains("\"0\""), "offending value echoed: {e}");
        let e = run_cli(&["run", "PR", "--threads", "nope"], &inst).unwrap_err();
        assert!(e.0.contains("--threads needs a positive integer"), "{e}");
        assert!(e.0.contains("\"nope\""), "offending value echoed: {e}");
        let e = run_cli(&["run", "PR", "--frob"], &inst).unwrap_err();
        assert!(e.0.contains("unknown flag"), "{e}");
        let e = run_cli(&["run", "PR", "first", "second"], &inst).unwrap_err();
        assert!(e.0.contains("unexpected argument"), "{e}");
    }

    #[test]
    fn trace_renders_steps() {
        let inst = run_cli(&["generate", "chain-away", "4"], "").unwrap();
        let out = run_cli(&["trace", "NewPR", "first"], &inst).unwrap();
        assert!(out.contains("step   1"));
        assert!(out.contains("reverses"));
    }

    #[test]
    fn check_verifies_instances() {
        let inst = run_cli(&["generate", "random", "10", "3"], "").unwrap();
        let out = run_cli(&["check"], &inst).unwrap();
        assert!(out.contains("all checks passed"));
    }

    #[test]
    fn check_rejects_garbage() {
        let e = run_cli(&["check"], "this is not an instance").unwrap_err();
        assert!(e.0.contains("invalid instance"));
    }

    fn example_spec(name: &str) -> String {
        format!("{}/examples/scenarios/{name}", env!("CARGO_MANIFEST_DIR"))
    }

    #[test]
    fn scenario_validate_accepts_the_shipped_examples() {
        for spec in [
            "churn_waves.json",
            "partition_heal.json",
            "lossy_reversal.json",
        ] {
            let path = example_spec(spec);
            let out = run_cli(&["scenario", "validate", &path], "").unwrap();
            assert!(out.contains("OK"), "{spec}: {out}");
        }
    }

    #[test]
    fn scenario_run_smoke_produces_rows_without_appending() {
        let path = example_spec("partition_heal.json");
        let out = run_cli(&["scenario", "run", "--smoke", "--no-append", &path], "").unwrap();
        assert!(out.contains("partition-heal"), "{out}");
        assert!(out.contains("[0] start"), "{out}");
        assert!(out.contains("summary"), "{out}");
        assert!(out.contains("append skipped"), "{out}");
    }

    #[test]
    fn scenario_rejects_bad_usage() {
        assert!(run_cli(&["scenario"], "").is_err());
        assert!(run_cli(&["scenario", "frobnicate", "x.json"], "").is_err());
        assert!(run_cli(&["scenario", "validate"], "").is_err());
        assert!(run_cli(&["scenario", "validate", "--smoke", "x.json"], "").is_err());
        let e = run_cli(&["scenario", "run", "/nonexistent/spec.json"], "").unwrap_err();
        assert!(e.0.contains("cannot read"), "{e}");
    }

    #[test]
    fn scenario_sweep_smoke_runs_the_matrix_example() {
        let path = example_spec("matrix_sweep.json");
        for threads_args in [&["--threads", "2"][..], &["--threads=2"][..]] {
            let mut args = vec!["scenario", "sweep", "--smoke", "--no-append"];
            args.extend_from_slice(threads_args);
            args.push(&path);
            let out = run_cli(&args, "").unwrap();
            assert!(
                out.contains("matrix expanded to 24 point(s) = 24 cell(s)"),
                "{out}"
            );
            assert!(out.contains("2 thread(s)"), "{out}");
            assert!(out.contains("append skipped"), "{out}");
            // One (right-aligned, hence indented) table row per point
            // plus the whole-sweep roll-up.
            let data_rows = out
                .lines()
                .filter(|l| {
                    l.starts_with(' ')
                        && l.trim_start()
                            .chars()
                            .next()
                            .is_some_and(|c| c.is_ascii_digit())
                })
                .count();
            assert_eq!(data_rows, 25, "24 points + 1 sweep roll-up:\n{out}");
        }
    }

    #[test]
    fn scenario_sweep_rejects_bad_threads() {
        let path = example_spec("matrix_sweep.json");
        let e = run_cli(&["scenario", "sweep", "--threads", "0", &path], "").unwrap_err();
        assert!(e.0.contains("at least 1") && e.0.contains("\"0\""), "{e}");
        let e = run_cli(&["scenario", "sweep", "--threads", "nope", &path], "").unwrap_err();
        assert!(
            e.0.contains("positive integer") && e.0.contains("\"nope\""),
            "{e}"
        );
        let e = run_cli(&["scenario", "sweep", &path, "--threads"], "").unwrap_err();
        assert!(e.0.contains("needs a value"), "{e}");
        // --threads belongs to sweep, not run — both spellings, echoed
        // as typed.
        let e = run_cli(&["scenario", "run", "--threads", "2", &path], "").unwrap_err();
        assert!(e.0.contains("unknown flag"), "{e}");
        let e = run_cli(&["scenario", "run", "--threads=2", &path], "").unwrap_err();
        assert!(e.0.contains("\"--threads=2\""), "{e}");
    }

    #[test]
    fn scenario_run_redirects_matrix_specs_to_sweep() {
        let path = example_spec("matrix_sweep.json");
        let e = run_cli(&["scenario", "run", "--smoke", "--no-append", &path], "").unwrap_err();
        assert!(e.0.contains("use `lr scenario sweep`"), "{e}");
    }

    #[test]
    fn scenario_validate_reports_the_matrix_point_count() {
        let path = example_spec("matrix_sweep.json");
        let out = run_cli(&["scenario", "validate", &path], "").unwrap();
        assert!(out.contains("matrix of 24 point(s)"), "{out}");
    }

    #[test]
    fn scenario_errors_name_the_failing_path() {
        let dir = std::env::temp_dir();
        let bad = dir.join(format!("lr_cli_bad_spec_{}.json", std::process::id()));
        std::fs::write(&bad, r#"{"name": "x", "topology": {"family": "warp"}}"#).unwrap();
        let e = run_cli(&["scenario", "validate", bad.to_str().unwrap()], "").unwrap_err();
        assert!(e.0.contains("topology.family"), "{e}");
        assert!(e.0.contains("unknown family"), "{e}");
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn modelcheck_verifies_all_3_node_instances() {
        let out = run_cli(&["modelcheck", "3", "--no-append"], "").unwrap();
        assert!(out.contains("n = 3"), "{out}");
        assert!(out.contains("54"), "all 54 instances: {out}");
        assert!(out.contains("NewPR invariants"), "{out}");
        assert!(out.contains("termination"), "{out}");
        assert!(out.contains("yes"), "{out}");
        assert!(!out.contains(" NO"), "{out}");
        assert!(out.contains("append skipped"), "{out}");
    }

    #[test]
    fn modelcheck_threads_and_checks_flags() {
        for threads_args in [&["--threads", "2"][..], &["--threads=2"][..]] {
            let mut args = vec!["modelcheck", "3", "--no-append", "--checks", "newpr,r"];
            args.extend_from_slice(threads_args);
            let out = run_cli(&args, "").unwrap();
            assert!(out.contains("2 thread(s)"), "{out}");
            assert!(out.contains("NewPR invariants"), "{out}");
            assert!(out.contains("R simulation"), "{out}");
            assert!(!out.contains("termination"), "--checks subset: {out}");
        }
        let out = run_cli(&["modelcheck", "3", "--no-append", "--checks=prset"], "").unwrap();
        assert!(out.contains("set actions"), "{out}");
    }

    #[test]
    fn modelcheck_rejects_bad_usage() {
        assert!(run_cli(&["modelcheck"], "").is_err());
        assert!(run_cli(&["modelcheck", "99"], "").is_err());
        assert!(run_cli(&["modelcheck", "x"], "").is_err());
        assert!(run_cli(&["modelcheck", "3", "3"], "").is_err());
        let e = run_cli(&["modelcheck", "3", "--threads", "0"], "").unwrap_err();
        assert!(e.0.contains("at least 1") && e.0.contains("\"0\""), "{e}");
        let e = run_cli(&["modelcheck", "3", "--threads", "abc"], "").unwrap_err();
        assert!(
            e.0.contains("positive integer") && e.0.contains("\"abc\""),
            "{e}"
        );
        let e = run_cli(&["modelcheck", "3", "--threads"], "").unwrap_err();
        assert!(e.0.contains("needs a value"), "{e}");
        let e = run_cli(&["modelcheck", "3", "--checks", "bogus"], "").unwrap_err();
        assert!(e.0.contains("unknown check"), "{e}");
        let e = run_cli(&["modelcheck", "3", "--frob"], "").unwrap_err();
        assert!(e.0.contains("unknown flag"), "{e}");
    }

    #[test]
    fn modelcheck_thread_resolution_precedence() {
        // Flag wins over environment; environment over the default of 1.
        assert_eq!(resolve_mc_threads(Some(4), Some("8")), 4);
        assert_eq!(resolve_mc_threads(None, Some("8")), 8);
        assert_eq!(resolve_mc_threads(None, Some("garbage")), 1);
        assert_eq!(resolve_mc_threads(None, None), 1);
    }

    #[test]
    fn obs_flags_are_parsed_and_stripped() {
        let (mode, out, inner) =
            parse_obs_flags(&["run", "PR", "--obs", "summary", "--obs-out", "t.json"]).unwrap();
        assert_eq!(mode, ObsMode::Summary);
        assert_eq!(out.as_deref(), Some("t.json"));
        assert_eq!(inner, ["run", "PR"]);
        let (mode, out, inner) =
            parse_obs_flags(&["run", "PR", "--obs=chrome", "--obs-out=x"]).unwrap();
        assert_eq!(mode, ObsMode::Chrome);
        assert_eq!(out.as_deref(), Some("x"));
        assert_eq!(inner, ["run", "PR"]);
        let (mode, out, inner) = parse_obs_flags(&["run", "PR", "first"]).unwrap();
        assert_eq!(mode, ObsMode::Off);
        assert_eq!(out, None);
        assert_eq!(inner, ["run", "PR", "first"]);
        assert!(parse_obs_flags(&["run", "--obs", "warp"]).is_err());
        assert!(parse_obs_flags(&["run", "--obs"]).is_err());
        assert!(parse_obs_flags(&["run", "--obs-out"]).is_err());
    }

    #[test]
    fn run_with_obs_summary_appends_a_report() {
        let inst = run_cli(&["generate", "chain-away", "6"], "").unwrap();
        let out = run_cli(&["run", "PR", "--obs", "summary"], &inst).unwrap();
        assert!(out.contains("total reversals:  5"), "{out}");
        assert!(out.contains("observability summary"), "{out}");
        assert!(out.contains("engine.round"), "{out}");
        assert!(out.contains("engine.steps"), "{out}");
        // The run's stats are unchanged by recording.
        let quiet = run_cli(&["run", "PR"], &inst).unwrap();
        assert!(out.starts_with(&quiet), "obs output must only append");
    }

    #[test]
    fn run_with_obs_chrome_writes_a_valid_trace() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("lr_cli_trace_{}.json", std::process::id()));
        let path_s = path.to_str().unwrap();
        let inst = run_cli(&["generate", "chain-away", "8"], "").unwrap();
        let out = run_cli(
            &["run", "PR", "--obs", "chrome", "--obs-out", path_s],
            &inst,
        )
        .unwrap();
        assert!(out.contains("chrome trace"), "{out}");
        let validated = run_cli(&["obs", "validate", path_s], "").unwrap();
        assert!(validated.contains("OK"), "{validated}");
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("traceEvents"), "{text}");
        assert!(text.contains("engine.round"), "{text}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn obs_validate_rejects_garbage_and_bad_usage() {
        let e = run_cli(&["obs"], "").unwrap_err();
        assert!(e.0.contains("validate"), "{e}");
        let e = run_cli(&["obs", "validate"], "").unwrap_err();
        assert!(e.0.contains("validate"), "{e}");
        let dir = std::env::temp_dir();
        let bad = dir.join(format!("lr_cli_bad_trace_{}.json", std::process::id()));
        std::fs::write(&bad, "{\"traceEvents\": [{\"name\": 3}]}").unwrap();
        let e = run_cli(&["obs", "validate", bad.to_str().unwrap()], "").unwrap_err();
        assert!(e.0.contains("invalid Chrome trace"), "{e}");
        let _ = std::fs::remove_file(&bad);
    }

    #[test]
    fn obs_out_without_a_recording_mode_is_rejected() {
        let inst = run_cli(&["generate", "chain-away", "4"], "").unwrap();
        let e = run_cli(&["run", "PR", "--obs-out", "t.json"], &inst).unwrap_err();
        assert!(e.0.contains("--obs-out needs --obs"), "{e}");
    }

    #[test]
    fn modelcheck_with_obs_summary_reports_check_spans() {
        let out = run_cli(&["modelcheck", "3", "--no-append", "--obs", "summary"], "").unwrap();
        assert!(
            out.contains("all checks passed") || out.contains("n = 3"),
            "{out}"
        );
        assert!(out.contains("modelcheck.check"), "{out}");
        assert!(out.contains("modelcheck.states"), "{out}");
    }

    /// Writes a small serve-able spec to a temp file; returns its path.
    fn serve_spec(tag: &str) -> std::path::PathBuf {
        let path =
            std::env::temp_dir().join(format!("lr_cli_serve_{tag}_{}.json", std::process::id()));
        std::fs::write(
            &path,
            r#"{
                "name": "cli-serve",
                "topology": {"family": "grid", "rows": 4, "cols": 4},
                "seeds": [11]
            }"#,
        )
        .unwrap();
        path
    }

    #[test]
    fn serve_output_is_deterministic_across_runs_and_threads() {
        let path = serve_spec("det");
        let p = path.to_str().unwrap();
        let base_args = ["serve", p, "--rate", "5", "--duration", "20", "--no-append"];
        let a = run_cli(&base_args, "").unwrap();
        let b = run_cli(&base_args, "").unwrap();
        assert_eq!(a, b, "fixed seed, byte-identical output");
        assert!(a.contains("serve cli-serve:"), "{a}");
        assert!(a.contains("latency (ticks): p50"), "{a}");
        assert!(a.contains("append skipped"), "{a}");
        for threads in ["2", "4"] {
            let mut args = base_args.to_vec();
            args.extend_from_slice(&["--threads", threads]);
            let par = run_cli(&args, "").unwrap();
            assert_eq!(par, a, "--threads {threads} must not change the output");
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_reads_a_feed_from_stdin() {
        let path = serve_spec("feed");
        let p = path.to_str().unwrap();
        let feed = "{\"at\": 2, \"fail\": [0, 1]}\n{\"at\": 6, \"route\": 3}\n";
        let out = run_cli(
            &[
                "serve",
                p,
                "--rate",
                "0",
                "--duration",
                "8",
                "--feed",
                "-",
                "--no-append",
            ],
            feed,
        )
        .unwrap();
        assert!(out.contains("feed 1"), "one feed route offered: {out}");
        assert!(out.contains("churn events applied 1"), "{out}");
        let bad = run_cli(&["serve", p, "--feed", "-", "--no-append"], "not json").unwrap_err();
        assert!(bad.0.contains("feed line 1"), "{bad}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_rejects_bad_usage() {
        let path = serve_spec("bad");
        let p = path.to_str().unwrap();
        assert!(run_cli(&["serve"], "").is_err());
        let e = run_cli(&["serve", p, "--threads", "0"], "").unwrap_err();
        assert!(e.0.contains("--threads must be at least 1"), "{e}");
        assert!(e.0.contains("\"0\""), "{e}");
        let e = run_cli(&["serve", p, "--rate", "abc"], "").unwrap_err();
        assert!(
            e.0.contains("--rate needs a positive integer") && e.0.contains("\"abc\""),
            "{e}"
        );
        let e = run_cli(&["serve", p, "--duration=0"], "").unwrap_err();
        assert!(e.0.contains("--duration must be at least 1"), "{e}");
        let e = run_cli(&["serve", p, "--frob"], "").unwrap_err();
        assert!(e.0.contains("unknown flag"), "{e}");
        let e = run_cli(&["serve", p, p], "").unwrap_err();
        assert!(e.0.contains("unexpected argument"), "{e}");
        let e = run_cli(&["serve", "/nonexistent/spec.json"], "").unwrap_err();
        assert!(e.0.contains("cannot read"), "{e}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn serve_with_obs_summary_reports_batch_spans() {
        let path = serve_spec("obs");
        let p = path.to_str().unwrap();
        let out = run_cli(
            &[
                "serve",
                p,
                "--rate",
                "3",
                "--duration",
                "10",
                "--no-append",
                "--obs",
                "summary",
            ],
            "",
        )
        .unwrap();
        assert!(out.contains("observability summary"), "{out}");
        assert!(out.contains("serve.batch"), "{out}");
        assert!(out.contains("serve.settle"), "{out}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn dot_renders() {
        let inst = run_cli(&["generate", "star", "3"], "").unwrap();
        let out = run_cli(&["dot"], &inst).unwrap();
        assert!(out.contains("digraph instance"));
        assert!(out.contains("doublecircle"));
    }
}
