//! # link-reversal
//!
//! A comprehensive Rust implementation of **link reversal algorithms**,
//! reproducing Radeva & Lynch, *Partial Reversal Acyclicity*
//! (MIT-CSAIL-TR-2011-022; brief announcement at PODC 2011) as a working
//! system: the paper's three Partial Reversal automata with every
//! invariant and simulation relation mechanized, the companion algorithms
//! (Full Reversal, Gafni–Bertsekas heights, Binary Link Labels), a
//! model-checking harness that verifies the paper's theorems exhaustively
//! on bounded instances, and the applications that motivate link reversal
//! in the first place — routing, leader election, and mutual exclusion —
//! on a message-passing network simulator.
//!
//! This crate is an umbrella that re-exports the workspace members:
//!
//! | module | crate | contents |
//! |---|---|---|
//! | [`graph`] | `lr-graph` | graphs, orientations, DAG analysis, embeddings, generators |
//! | [`ioa`] | `lr-ioa` | I/O automata, schedulers, explorer, simulation checking |
//! | [`core`] | `lr-core` | PR / OneStepPR / NewPR / FR / heights / BLL + invariants |
//! | [`simrel`] | `lr-simrel` | relations R′ and R, refinement, model checking |
//! | [`net`] | `lr-net` | network simulator, routing, election, mutex, threaded mode |
//! | [`scenario`] | `lr-scenario` | declarative churn/link/traffic scenarios + sweep runner |
//!
//! # Quickstart
//!
//! ```
//! use link_reversal::prelude::*;
//!
//! // The classic worst case: a chain with every edge pointing away from
//! // the destination.
//! let inst = generate::chain_away(32);
//!
//! // Run the paper's NewPR to termination under greedy scheduling.
//! let mut engine = NewPrEngine::new(&inst);
//! let stats = run_to_destination_oriented(
//!     &mut engine, SchedulePolicy::GreedyRounds, DEFAULT_MAX_STEPS);
//!
//! // The final graph is acyclic and destination-oriented.
//! assert!(stats.terminated);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use lr_core as core;
pub use lr_graph as graph;
pub use lr_ioa as ioa;
pub use lr_net as net;
pub use lr_scenario as scenario;
pub use lr_simrel as simrel;

pub mod cli;

/// The most commonly used items in one import.
pub mod prelude {
    pub use lr_core::alg::{
        AlgorithmKind, BllEngine, BllLabeling, FrontierBllEngine, FrontierEngine, FrontierFamily,
        FrontierFrEngine, FrontierNewPrEngine, FrontierPairHeightsEngine, FrontierPrEngine,
        FrontierTripleHeightsEngine, FullReversalAutomaton, FullReversalEngine, NewPrAutomaton,
        NewPrEngine, OneStepPrAutomaton, PairHeightsEngine, PrEngine, PrSetAutomaton,
        ReversalEngine, TripleHeightsEngine,
    };
    pub use lr_core::engine::{
        run_engine, run_engine_frontier, run_engine_frontier_sharded, run_engine_parallel,
        run_to_destination_oriented, RunStats, SchedulePolicy, DEFAULT_MAX_STEPS,
    };
    pub use lr_core::invariants;
    pub use lr_core::{StepOutcome, StepScratch};
    pub use lr_graph::{
        generate, stream, CsrInstance, DirectedView, NodeId, Orientation, PlaneEmbedding,
        ReversalInstance, UndirectedGraph,
    };
    pub use lr_ioa::{run, run_to_quiescence, schedulers, Automaton, Execution};
    pub use lr_simrel::{r_checker, r_prime_checker};
}
