//! The `lr` binary: thin I/O wrapper around [`link_reversal::cli`].

use std::io::Read;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let arg_refs: Vec<&str> = args.iter().map(String::as_str).collect();
    // Only the piped commands read stdin; don't block `generate`/`help`.
    // `serve` reads it solely when the feed is `-`.
    let needs_stdin = match arg_refs.first().copied() {
        Some("run") | Some("trace") | Some("check") | Some("dot") => true,
        Some("serve") => {
            arg_refs.contains(&"--feed=-") || arg_refs.windows(2).any(|w| w == ["--feed", "-"])
        }
        _ => false,
    };
    let mut stdin = String::new();
    if needs_stdin && std::io::stdin().read_to_string(&mut stdin).is_err() {
        eprintln!("error: could not read stdin");
        return ExitCode::FAILURE;
    }
    match link_reversal::cli::run_cli(&arg_refs, &stdin) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
